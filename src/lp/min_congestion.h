// Min-congestion routing solvers.
//
// Two regimes, one engine:
//  * restricted: route each commodity over an explicit candidate-path set
//    (Stage 4 of the semi-oblivious pipeline, Definition 5.1's cong_R(P, d)),
//  * free: route over all paths of the graph — the offline optimum
//    opt_{G,R}(d) the competitive ratio is measured against.
//
// Both are solved by multiplicative weights (Freund–Schapire) on the
// zero-sum game "router picks a path per commodity, adversary picks an
// edge", with the router best-responding to exponential edge weights. The
// returned congestion is the *exact* congestion of the averaged routing (a
// valid upper bound); `lower_bound` is an LP-duality certificate
//     opt >= sum_j d_j * dist_w(s_j, t_j) / sum_e cap_e * w_e
// so `congestion / lower_bound` bounds the solver's suboptimality.
//
// Exact reference solvers (dense simplex) are provided for small instances
// and used by the tests to validate the MWU engine.
#pragma once

#include <vector>

#include "core/path_store.h"
#include "graph/graph.h"
#include "lp/simplex.h"

namespace sor {

/// One source-destination pair with a demand amount (d(s,t) in the paper).
struct Commodity {
  int s = 0;
  int t = 0;
  double amount = 0.0;
};

struct MinCongestionOptions {
  int rounds = 800;          ///< MWU iterations
  double target_gap = 1.02;  ///< stop early once upper/lower <= target_gap
  int min_rounds = 50;
};

struct CongestionResult {
  /// Fractional weight per commodity per candidate path (restricted mode
  /// only; empty in free mode). weights[j][i] sums to commodity j's amount.
  std::vector<std::vector<double>> path_weights;
  /// Aggregate (fractional) load per edge of the returned routing.
  std::vector<double> edge_load;
  /// Exact max_e load_e / cap_e of the returned routing (upper bound).
  double congestion = 0.0;
  /// Best dual certificate found: a lower bound on the LP optimum.
  double lower_bound = 0.0;
  int rounds_used = 0;
};

/// Fractional min-congestion routing of `commodities` where commodity j may
/// only use `candidate_paths[j]`. Each candidate must be a valid s_j-t_j
/// path; every commodity with amount > 0 needs >= 1 candidate.
CongestionResult min_congestion_over_paths(
    const Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<std::vector<Path>>& candidate_paths,
    const MinCongestionOptions& options = {});

/// Same solve over the flat, pre-resolved edge-id representation (the hot
/// path: no hashing, no per-call edge resolution, contiguous iteration).
/// `candidates` must hold one commodity entry per commodity, in order;
/// every commodity with amount > 0 needs >= 1 candidate. Produces results
/// bit-identical to the vertex-sequence overload on the same candidates.
CongestionResult min_congestion_over_paths(
    const Graph& g, const std::vector<Commodity>& commodities,
    const FlatCandidates& candidates,
    const MinCongestionOptions& options = {});

/// Fractional min-congestion over ALL paths (the offline optimum, i.e. the
/// maximum-concurrent-flow LP). Only congestion/lower_bound/edge_load are
/// populated.
CongestionResult min_congestion_free(
    const Graph& g, const std::vector<Commodity>& commodities,
    const MinCongestionOptions& options = {});

/// Exact LP (dense simplex) version of min_congestion_over_paths. Intended
/// for small instances; returns optimal congestion and weights.
CongestionResult min_congestion_over_paths_exact(
    const Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<std::vector<Path>>& candidate_paths);

/// Exact LP (edge-flow formulation) optimum over all paths; small instances
/// only. Only `congestion` is populated (plus lower_bound == congestion).
double min_congestion_free_exact(const Graph& g,
                                 const std::vector<Commodity>& commodities);

/// Exact congestion (max_e load/cap) of explicit per-commodity path weights.
double congestion_of_weights(const Graph& g,
                             const std::vector<Commodity>& commodities,
                             const std::vector<std::vector<Path>>& paths,
                             const std::vector<std::vector<double>>& weights,
                             std::vector<double>* edge_load = nullptr);

/// Flat-representation variant (no hashing; bit-identical result).
double congestion_of_weights(const Graph& g,
                             const std::vector<Commodity>& commodities,
                             const FlatCandidates& candidates,
                             const std::vector<std::vector<double>>& weights,
                             std::vector<double>* edge_load = nullptr);

}  // namespace sor
