// Min-congestion routing solvers.
//
// Two regimes, one engine:
//  * restricted: route each commodity over an explicit candidate-path set
//    (Stage 4 of the semi-oblivious pipeline, Definition 5.1's cong_R(P, d)),
//  * free: route over all paths of the graph — the offline optimum
//    opt_{G,R}(d) the competitive ratio is measured against.
//
// Both are solved by multiplicative weights (Freund–Schapire) on the
// zero-sum game "router picks a path per commodity, adversary picks an
// edge", with the router best-responding to exponential edge weights. The
// returned congestion is the *exact* congestion of the averaged routing (a
// valid upper bound); `lower_bound` is an LP-duality certificate
//     opt >= sum_j d_j * dist_w(s_j, t_j) / sum_e cap_e * w_e
// so `congestion / lower_bound` bounds the solver's suboptimality.
//
// Exact reference solvers (dense simplex) are provided for small instances
// and used by the tests to validate the MWU engine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/path_store.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "lp/simplex.h"

namespace sor {

namespace obs {
class ConvergenceSink;
}  // namespace obs

/// One source-destination pair with a demand amount (d(s,t) in the paper).
struct Commodity {
  int s = 0;
  int t = 0;
  double amount = 0.0;
};

/// Anytime-solve budget. MWU is an anytime algorithm — every round carries
/// an LP dual certificate — so a budgeted solve stops early and returns the
/// best-congestion averaged iterate seen so far, together with the dual
/// lower bound and a certified optimality gap.
///
/// Determinism contract:
///  * max_rounds truncates the SAME trajectory an unbudgeted solve walks
///    (the learning rate is still derived from options.rounds), so a
///    round-budgeted solve is seed-exact deterministic and is a prefix of
///    the full solve.
///  * target_gap overrides options.target_gap for the early-exit check —
///    also deterministic.
///  * deadline_ms consults the wall clock every kDeadlineCheckRounds
///    rounds; which checkpoint trips is machine-dependent, so
///    deadline-stopped results are documented as non-deterministic and
///    excluded from identity gates. The clock is never consulted when
///    deadline_ms == 0.
/// With all three fields at 0 the solve is bit-identical to a build
/// without this struct.
struct SolveBudget {
  int max_rounds = 0;        ///< 0 = no cap; else stop after this many rounds
  double deadline_ms = 0.0;  ///< 0 = no deadline; wall-clock milliseconds
  double target_gap = 0.0;   ///< 0 = keep options.target_gap; else must be >= 1
  bool enabled() const {
    return max_rounds > 0 || deadline_ms > 0.0 || target_gap > 0.0;
  }
  /// "max_rounds=N,deadline_ms=D,target_gap=G" (aliases: rounds, gap; any
  /// subset of keys). Nullopt on unknown keys / out-of-range values.
  static std::optional<SolveBudget> parse(const std::string& text);
  std::string to_string() const;
  friend bool operator==(const SolveBudget&, const SolveBudget&) = default;
};

/// Why a solve stopped.
enum class SolveStatus {
  kCompleted = 0,       ///< ran the full configured rounds
  kTargetReached = 1,   ///< upper/lower hit the target gap early
  kBudgetRounds = 2,    ///< stopped at SolveBudget::max_rounds
  kBudgetDeadline = 3,  ///< stopped at SolveBudget::deadline_ms
};
const char* to_string(SolveStatus status);

/// Deadline checks happen every this many rounds (deterministic round
/// counter; the clock is only read at checkpoints, and only when a
/// deadline is set).
inline constexpr int kDeadlineCheckRounds = 16;

/// Warm-start seed for an MWU solve: the adversary's final log-weights from
/// a previous solve of a nearby instance, optionally damped by `scale`.
///
/// Contract (docs/warm-start.md):
///  * Seeding only changes the solver's STARTING iterate. The returned
///    congestion is still the exact congestion of the routing actually
///    averaged, and the dual bound is still a valid lower bound on opt, so
///    warm and cold results of the same instance cross-validate exactly like
///    fast_math: lower_warm <= congestion_cold and lower_cold <=
///    congestion_warm.
///  * `log_x` must have one entry per edge of the solved graph and every
///    entry must be finite and >= 0 (MWU log-weights only grow from 0).
///    A size mismatch is ignored (the solve runs cold).
///  * `scale` in [0, 1] damps the seed; 0 reproduces the cold solve
///    bit-identically.
struct MwuWarmStart {
  std::span<const double> log_x;
  double scale = 1.0;
};

struct MinCongestionOptions {
  int rounds = 800;          ///< MWU iterations
  double target_gap = 1.02;  ///< stop early once upper/lower <= target_gap
  int min_rounds = 50;
  SolveBudget budget;        ///< anytime budget; default = disabled
  /// Optional warm-start seed (see MwuWarmStart). Null = cold solve; the
  /// cold path is bit-identical to a build without this field.
  const MwuWarmStart* warm = nullptr;
  /// When non-null, the solver's final per-edge adversary log-weights are
  /// assigned into this vector (capacity retained) just before returning —
  /// the capture half of the warm-start cycle. Null = no capture; results
  /// are unaffected either way.
  std::vector<double>* capture_log_x = nullptr;
  /// Opt-in per-round convergence telemetry (see obs/convergence.h): when
  /// non-null, each round appends one ConvergenceRecord — congestion of
  /// the averaged iterate, dual certificate, running lower bound,
  /// certified gap, touched-edge count — after that round's load
  /// aggregation. Observation only: a solve with a sink attached is
  /// bit-identical to one without (the extra per-round congestion scan
  /// reads solver state, never writes it). Null (default) = no recording
  /// and no extra work.
  obs::ConvergenceSink* sink = nullptr;
  /// Opt-in fast-math mode (default OFF). Replaces the reference loop's
  /// O(m)-per-round serial total-sum of the adversary weights with a
  /// segmented accumulator sum — in the restricted solver the untouched-edge
  /// mass is additionally folded as one (count * value) product, making the
  /// round cost proportional to the demand footprint instead of to m.
  ///
  /// Numerical contract (relaxes bit-identity, nothing else):
  ///  * every per-edge quantity (exp weights, loads, the final congestion
  ///    evaluation) is computed with the exact mode's arithmetic; ONLY the
  ///    normalizing total sum_e x_e is accumulated in a different
  ///    association, perturbing it by at most m * 2^-52 relative;
  ///  * the perturbed lengths can flip the router's choice between paths
  ///    whose lengths agree to within that perturbation — equally good
  ///    best responses — so on tie-degenerate instances (unit-capacity
  ///    tori/hypercubes) per-round path counts, and with them the averaged
  ///    routing, may differ by a few round-granularity quanta;
  ///  * BOTH runs remain exact certificates of the same LP: the returned
  ///    congestion is the true congestion of the routing actually
  ///    averaged, and the dual bound is a valid lower bound on opt up to a
  ///    1 + m * 2^-52 factor. Hence lower_fast <= congestion_exact and
  ///    lower_exact <= congestion_fast (cross-validity), and both
  ///    congestions sit within the solver's convergence band of opt:
  ///      |congestion_fast - congestion_exact|
  ///          <= 0.05 * max(1, congestion_exact)
  ///    on every supported instance (tests and bench_m5 enforce this band
  ///    plus cross-validity; observed differences are ~1e-3, i.e. one or
  ///    two flipped rounds out of hundreds).
  bool fast_math = false;
};

struct CongestionResult {
  /// Fractional weight per commodity per candidate path (restricted mode
  /// only; empty in free mode). weights[j][i] sums to commodity j's amount.
  std::vector<std::vector<double>> path_weights;
  /// Aggregate (fractional) load per edge of the returned routing.
  std::vector<double> edge_load;
  /// Exact max_e load_e / cap_e of the returned routing (upper bound).
  double congestion = 0.0;
  /// Best dual certificate found: a lower bound on the LP optimum.
  double lower_bound = 0.0;
  int rounds_used = 0;
  /// Why the solve stopped (anytime budgets report kBudgetRounds /
  /// kBudgetDeadline; the classic early exit reports kTargetReached).
  SolveStatus status = SolveStatus::kCompleted;
  /// Certified suboptimality: congestion / lower_bound - 1, so
  ///   lower_bound <= opt <= congestion = lower_bound * (1 + gap).
  /// +inf when no positive dual bound was collected (e.g. a 0-round
  /// budget); 0 for empty instances.
  double optimality_gap = 0.0;
};

/// Reusable scratch for the two MWU solvers below. Every vector a solve
/// needs lives here and is reset with clear()/assign() (capacity retained),
/// so a warm scratch makes repeated solves of stable shape allocation-free —
/// the steady-state serving contract the runtime layer gates. Contents
/// never influence results: a solve through a warm scratch is bit-identical
/// to one through a fresh scratch (pinned by tests/test_runtime.cpp).
struct MinCongestionScratch {
  // Restricted solver: dedup'd candidate scan arena.
  std::vector<int> scan_arena;
  std::vector<std::int64_t> scan_first;
  std::vector<std::int64_t> commodity_scan_first;
  std::vector<std::int32_t> original_index;
  std::vector<int> counts;
  std::vector<int> cand_edges;
  std::vector<char> in_cand;
  std::vector<std::span<const int>> chosen_edges;
  // Shared MWU state.
  std::vector<double> cap;
  std::vector<double> log_x;
  std::vector<double> expv;
  std::vector<double> lengths;
  std::vector<double> cumulative_load;
  std::vector<double> round_load;
  std::vector<double> chosen_len;
  std::vector<int> touched;
  // Anytime-budget best-iterate snapshots (only touched when a round cap /
  // deadline budget is active; empty otherwise).
  std::vector<double> budget_load;
  std::vector<int> budget_counts;
  std::vector<int> active;
  std::vector<int> dirty;
  std::vector<char> is_active;
  std::vector<char> is_dirty;
  // Free solver: counting-sorted source grouping + Dijkstra state.
  std::vector<std::size_t> source_first;  // n + 2 prefix/cursor array
  std::vector<std::size_t> by_source;     // commodity indices, source-major
  std::vector<int> sources;
  std::vector<int> distinct_targets;
  std::vector<char> is_target;
  std::vector<std::vector<int>> owned;
  std::vector<double> dist;
  std::vector<int> parent_edge;
  DijkstraScratch dijkstra;
  // CSR snapshot cache, keyed on graph identity + shape. Arcs depend only
  // on the incidence structure, never on capacities, so the snapshot stays
  // valid across Graph::set_edge_capacity (the only mutation the scenario
  // layer performs on a served graph).
  std::optional<FlatAdjacency> adj;
  const Graph* adj_graph = nullptr;
  int adj_vertices = 0;
  int adj_edges = 0;
};

/// Fractional min-congestion routing of `commodities` where commodity j may
/// only use `candidate_paths[j]`. Each candidate must be a valid s_j-t_j
/// path; every commodity with amount > 0 needs >= 1 candidate.
CongestionResult min_congestion_over_paths(
    const Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<std::vector<Path>>& candidate_paths,
    const MinCongestionOptions& options = {});

/// Same solve over the flat, pre-resolved edge-id representation (the hot
/// path: no hashing, no per-call edge resolution, contiguous iteration).
/// `candidates` must hold one commodity entry per commodity, in order;
/// every commodity with amount > 0 needs >= 1 candidate. Produces results
/// bit-identical to the vertex-sequence overload on the same candidates.
CongestionResult min_congestion_over_paths(
    const Graph& g, const std::vector<Commodity>& commodities,
    const FlatCandidates& candidates,
    const MinCongestionOptions& options = {});

/// Scratch-threaded form of the flat restricted solve: all working state
/// lives in `scratch`, the result is written into `out` (both reused across
/// calls, capacities retained). Bit-identical to the value-returning
/// overload, which is now a thin wrapper over this.
void min_congestion_over_paths_into(const Graph& g,
                                    const std::vector<Commodity>& commodities,
                                    const FlatCandidates& candidates,
                                    const MinCongestionOptions& options,
                                    MinCongestionScratch& scratch,
                                    CongestionResult& out);

/// Fractional min-congestion over ALL paths (the offline optimum, i.e. the
/// maximum-concurrent-flow LP). Only congestion/lower_bound/edge_load are
/// populated. Runs on the flat substrate: scratch-reusing Dijkstra best
/// responses, incremental max_log/exp caching, and sparse touched-set load
/// aggregation, all bit-identical to the reference MWU loop (pinned by
/// tests/test_free_path_flat.cpp and bench_m5_free_path's legacy replica).
CongestionResult min_congestion_free(
    const Graph& g, const std::vector<Commodity>& commodities,
    const MinCongestionOptions& options = {});

/// Scratch-threaded form of the free solve (see
/// min_congestion_over_paths_into for the contract). Also caches the CSR
/// adjacency snapshot in the scratch across calls on the same graph.
void min_congestion_free_into(const Graph& g,
                              const std::vector<Commodity>& commodities,
                              const MinCongestionOptions& options,
                              MinCongestionScratch& scratch,
                              CongestionResult& out);

/// Exact LP (dense simplex) version of min_congestion_over_paths. Intended
/// for small instances; returns optimal congestion and weights.
CongestionResult min_congestion_over_paths_exact(
    const Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<std::vector<Path>>& candidate_paths);

/// Exact LP (edge-flow formulation) optimum over all paths; small instances
/// only. Only `congestion` is populated (plus lower_bound == congestion).
double min_congestion_free_exact(const Graph& g,
                                 const std::vector<Commodity>& commodities);

/// Exact congestion (max_e load/cap) of explicit per-commodity path weights.
double congestion_of_weights(const Graph& g,
                             const std::vector<Commodity>& commodities,
                             const std::vector<std::vector<Path>>& paths,
                             const std::vector<std::vector<double>>& weights,
                             std::vector<double>* edge_load = nullptr);

/// Flat-representation variant (no hashing; bit-identical result). A
/// non-null `edge_load` is written IN PLACE (assign + accumulate, capacity
/// retained) — allocation-free once the caller's vector is warm.
double congestion_of_weights(const Graph& g,
                             const std::vector<Commodity>& commodities,
                             const FlatCandidates& candidates,
                             const std::vector<std::vector<double>>& weights,
                             std::vector<double>* edge_load = nullptr);

}  // namespace sor
