// Dense two-phase primal simplex.
//
// This is the exact reference solver for the small LPs in tests and for the
// exact variants of min-congestion routing. The large-scale paths are solved
// by the multiplicative-weights engine in min_congestion.h; simplex results
// are used to validate it.
#pragma once

#include <vector>

namespace sor {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// minimize c.x  subject to  A x (rel) b,  x >= 0.
struct LinearProgram {
  std::vector<double> objective;            ///< c, size = num variables
  std::vector<std::vector<double>> rows;    ///< A, each row size = num vars
  std::vector<double> rhs;                  ///< b
  std::vector<Relation> relations;          ///< one per row

  std::size_t num_variables() const { return objective.size(); }
  std::size_t num_constraints() const { return rows.size(); }

  /// Appends a constraint. `coeffs` must have num_variables() entries.
  void add_constraint(std::vector<double> coeffs, Relation rel, double b);
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves with Bland's rule (no cycling). Intended for small/medium dense
/// instances (hundreds of rows/columns).
LpSolution solve(const LinearProgram& lp);

}  // namespace sor
