// Hop-bounded shortest paths and the hop-constrained offline optimum
// opt^(h) (Section 7): the minimum congestion over routings with dilation
// at most h. This is the competitor completion-time semi-oblivious routing
// is measured against.
//
// The best response oracle is a layered Bellman-Ford DP: dist[k][v] = the
// cheapest walk from the source to v using exactly <= k edges. The MWU
// engine from min_congestion.h then optimizes congestion over the h-hop
// path polytope.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "lp/min_congestion.h"

namespace sor {

/// Cheapest s->t path with at most `max_hops` edges under `length`
/// (non-negative). Returns an empty path if unreachable within the bound.
Path hop_bounded_shortest_path(const Graph& g, int s, int t, int max_hops,
                               const std::vector<double>& length);

/// Lengths of the cheapest <= max_hops walks from `source` to every vertex
/// (infinity if unreachable within the bound).
std::vector<double> hop_bounded_distances(const Graph& g, int source,
                                          int max_hops,
                                          const std::vector<double>& length);

/// Fractional min-congestion over all routings with dilation <= max_hops —
/// the paper's opt^(h) (fractional relaxation). Every commodity must be
/// reachable within max_hops. `lower_bound` is the h-hop duality
/// certificate (valid against all h-hop routings).
CongestionResult min_congestion_hop_bounded(
    const Graph& g, const std::vector<Commodity>& commodities, int max_hops,
    const MinCongestionOptions& options = {});

}  // namespace sor
