#include "runtime/scratch.h"

#include "obs/trace.h"

namespace sor::runtime {

ScratchPool::Lease ScratchPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<EngineScratch> scratch = std::move(free_.back());
      free_.pop_back();
      return Lease(*this, std::move(scratch));
    }
  }
  // Mint outside the lock: construction is the expensive path and only
  // happens while the pool is still growing to its steady width. The
  // instant marks exactly those growth events — a trace of a steady-state
  // run shows none.
  obs::tracer().record_instant("scratch_mint", "runtime");
  return Lease(*this, std::make_unique<EngineScratch>());
}

void ScratchPool::put(std::unique_ptr<EngineScratch> scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(scratch));
}

}  // namespace sor::runtime
