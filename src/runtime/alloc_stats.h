// Allocation observability for the long-lived service runtime.
//
// The service-memory contract ("the steady-state epoch loop performs zero
// heap allocations after warm-up", README: service memory model) is only
// worth stating if it is MEASURED, so this header exposes a per-thread
// allocation counter fed by an opt-in global operator new/delete
// interposition (alloc_stats.cpp, compiled when the build defines
// SOR_ALLOC_STATS — the default CMake configuration does; sanitizer builds
// turn it off because ASan/TSan own the allocator there).
//
// Counters are THREAD-LOCAL: a probe reads only the calling thread's
// activity, so a serial serving loop measures itself exactly even while
// unrelated threads allocate. Counting is always on when compiled in — an
// uncontended thread-local increment per new/delete is noise next to the
// allocation itself — and `counting_compiled()` tells callers (tests, the
// m7 bench) whether a zero-allocation assertion is meaningful in this
// build.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sor::runtime {

/// Monotonic per-thread allocation totals since thread start.
struct AllocCounters {
  std::uint64_t allocs = 0;       ///< operator new calls
  std::uint64_t frees = 0;        ///< operator delete calls
  std::uint64_t alloc_bytes = 0;  ///< bytes requested through operator new

  friend AllocCounters operator-(const AllocCounters& a,
                                 const AllocCounters& b) {
    return {a.allocs - b.allocs, a.frees - b.frees,
            a.alloc_bytes - b.alloc_bytes};
  }
};

/// True iff this build interposes operator new/delete (SOR_ALLOC_STATS).
/// When false every counter below reads 0 and zero-alloc assertions are
/// vacuous — callers should skip them, not celebrate.
bool counting_compiled();

/// The calling thread's running totals (all zero when not compiled in).
AllocCounters thread_counters();

/// Scoped delta probe over the calling thread's counters:
///   AllocProbe probe;
///   hot_loop();
///   report.mem.allocs = probe.delta().allocs;
class AllocProbe {
 public:
  AllocProbe() : start_(thread_counters()) {}
  AllocCounters delta() const { return thread_counters() - start_; }

 private:
  AllocCounters start_;
};

/// Resident set size of the process in bytes (/proc/self/statm on Linux;
/// 0 where unavailable). Reads into a stack buffer — no allocation — so it
/// is safe to sample inside a measured region.
std::size_t rss_bytes();

}  // namespace sor::runtime
