// Engine-owned scratch for the steady-state serving loop.
//
// One EngineScratch aggregates every reusable working set a single
// route_one call needs — the restricted-MWU route scratch, the free-MWU
// optimum scratch, the distance-bound Dijkstra row, and the packet-path
// staging arena. All of it is capacity-retaining (see the per-layer scratch
// structs), so a warm EngineScratch makes the whole stage-3..5 pipeline
// allocation-free under a stable demand shape — the measured contract
// bench_m7_service_memory gates.
//
// ScratchPool is the concurrency story: route_batch fans demands out across
// the engine's thread pool, and scratch contents must never be shared
// mid-solve, so each route_one call leases a scratch from a mutex-guarded
// free list (RAII; returned on lease destruction). WHICH scratch a call
// gets is scheduling-dependent, but scratch contents never influence
// results — every consumer resets its buffers with assign()/clear() before
// reading them — so the nondeterministic borrowing is invisible in outputs
// (route_batch's bit-identity across thread counts is pinned by
// tests/test_route_batch.cpp and re-checked by tests/test_runtime.cpp).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/semi_oblivious.h"

namespace sor::runtime {

/// Everything one route_one call scratches on, pre-warmed across calls.
struct EngineScratch {
  RouteScratch route;            ///< restricted MWU + flat candidate gather
  OptimumScratch optimum;        ///< free-path MWU (offline optimum oracle)
  DistanceBoundScratch distance; ///< distance-duality lower bound
  std::vector<Path> packet_paths;  ///< packet-simulation staging
};

/// Mutex-guarded free list of EngineScratch instances. acquire() pops a
/// warm scratch (or mints a fresh one when the list is empty — at most once
/// per concurrently-active route call, so a pool serving a route_batch
/// settles at the pool's thread width); the lease returns it on
/// destruction.
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool& pool, std::unique_ptr<EngineScratch> scratch)
        : pool_(&pool), scratch_(std::move(scratch)) {}
    ~Lease() {
      if (scratch_) pool_->put(std::move(scratch_));
    }
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    EngineScratch& operator*() const { return *scratch_; }
    EngineScratch* operator->() const { return scratch_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<EngineScratch> scratch_;
  };

  ScratchPool() = default;
  // Movable so the owning engine stays movable. Only the free list moves —
  // each pool keeps its own mutex — and moving is only legal while no
  // lease is outstanding (exactly the engine's own move precondition: no
  // in-flight route call).
  ScratchPool(ScratchPool&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mutex_);
    free_ = std::move(other.free_);
  }
  ScratchPool& operator=(ScratchPool&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mutex_, other.mutex_);
      free_ = std::move(other.free_);
    }
    return *this;
  }

  Lease acquire();

 private:
  void put(std::unique_ptr<EngineScratch> scratch);

  std::mutex mutex_;
  std::vector<std::unique_ptr<EngineScratch>> free_;
};

}  // namespace sor::runtime
