#include "runtime/alloc_stats.h"

#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sor::runtime {
namespace {

// Plain thread-local PODs (zero-initialized, no dynamic init) so the
// counting hooks are safe to run arbitrarily early, including from static
// constructors that allocate before main().
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

}  // namespace

bool counting_compiled() {
#ifdef SOR_ALLOC_STATS
  return true;
#else
  return false;
#endif
}

AllocCounters thread_counters() { return {t_allocs, t_frees, t_alloc_bytes}; }

std::size_t rss_bytes() {
#if defined(__linux__)
  // statm: "size resident shared text lib data dt" in pages. Raw
  // open/read/close into stack storage (fopen would heap-allocate the FILE
  // and show up in the very counters a probe is reading around this call).
  char buf[128];
  const int fd = ::open("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return 0;
  const ::ssize_t got = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (got <= 0) return 0;
  buf[got] = '\0';
  const char* p = buf;
  while (*p && *p != ' ') ++p;  // skip total size field
  const unsigned long long pages = std::strtoull(p, nullptr, 10);
  return static_cast<std::size_t>(pages) *
         static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

namespace detail {

// Called by the replacement operators below; kept out-of-line and in this
// TU so the interposition object is pulled into any binary that references
// ANY alloc_stats symbol (static-archive semantics: using AllocProbe links
// the counters in, and with them the operator replacements).
void note_alloc(std::size_t bytes) {
  ++t_allocs;
  t_alloc_bytes += bytes;
}

void note_free() { ++t_frees; }

}  // namespace detail

}  // namespace sor::runtime

#ifdef SOR_ALLOC_STATS

// Global operator new/delete replacement ([new.delete.single] — legal for
// the program to provide). Every form funnels through malloc/free exactly
// like the defaults, plus one thread-local counter bump. Sanitizer builds
// compile this out (CMake forces SOR_ALLOC_STATS off) so ASan/TSan keep
// their own allocator interceptors.

namespace {

void* counted_alloc(std::size_t size) {
  sor::runtime::detail::note_alloc(size);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  sor::runtime::detail::note_alloc(size);
  const std::size_t a = static_cast<std::size_t>(align);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  sor::runtime::detail::note_free();
  std::free(p);
}

#endif  // SOR_ALLOC_STATS
