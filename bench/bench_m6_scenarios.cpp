// Experiment M6 — scenario engine: the amortization/adaptivity trade-off
// over time.
//
// Drives SorEngine across trace-driven workloads (src/scenario/) under a
// sweep of ReinstallPolicies and reports, per (instance, policy), the
// canonical stage rows the CI gate parses:
//
//   scenario_route    Stage 2+3 wall-ms per epoch (informational; absolute
//                     ms drift only warns). speedup = the INSTALL
//                     AMORTIZATION FACTOR: how many Stage 2 installs the
//                     every_1 control pays per install this policy pays
//                     (= epochs / (1 + reinstalls)). Deterministic for a
//                     fixed seed — trace, trigger epochs, and hence the
//                     factor are exact — so the baseline gate pins the
//                     policy behavior itself, immune to wall-clock noise.
//                     The gate's floor is one-sided (a factor rising
//                     means fewer installs, which it cannot flag), so the
//                     scenario_install schedule check below re-derives
//                     every trigger — including on_support_drift from the
//                     recorded per-epoch drift — and fails identity on
//                     any deviation in either direction.
//                     identical = the WHOLE scenario
//                     report re-run on a fresh 2-thread engine is
//                     bit-identical (fixed seed => identical trace and
//                     identical per-epoch reports across thread counts).
//   scenario_install  Stage 2 wall-ms per epoch. identical = the policy's
//                     structural contract held: `never` skipped Stage 2 on
//                     every epoch after the first (0.0 ms installs),
//                     `every_1` paid it on every epoch, every_4 on the
//                     schedule, on_link_event exactly on event epochs.
//
// A row with identical=no is a bug, not a measurement.
//
//   bench_m6_scenarios [--quick] [--json PATH]
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/scenario.h"

namespace {

using namespace sor;
using scenario::EpochReport;
using scenario::ReinstallPolicy;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;
using scenario::ScenarioTrace;

/// Non-timing fields of two runs of the same scenario must match exactly.
bool reports_identical(const ScenarioReport& a, const ScenarioReport& b) {
  if (a.epochs.size() != b.epochs.size() || a.reinstalls != b.reinstalls) {
    return false;
  }
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const EpochReport& x = a.epochs[i];
    const EpochReport& y = b.epochs[i];
    if (x.reinstalled != y.reinstalled || x.rebuilt != y.rebuilt ||
        x.link_events != y.link_events || x.support != y.support ||
        x.offered != y.offered || x.routed != y.routed ||
        x.coverage != y.coverage || x.drift != y.drift ||
        x.congestion != y.congestion || x.ratio != y.ratio ||
        x.installed_pairs != y.installed_pairs ||
        x.installed_paths != y.installed_paths) {
      return false;
    }
  }
  return true;
}

/// The policy's structural contract: which epochs may/must pay Stage 2.
bool reinstall_schedule_ok(const ScenarioSpec& spec, const ScenarioTrace& trace,
                           const ScenarioReport& report) {
  for (const EpochReport& row : report.epochs) {
    if (row.epoch == 0) {
      if (!row.reinstalled || !(row.install_ms > 0.0)) return false;
      continue;
    }
    bool expected = false;
    switch (spec.reinstall.kind) {
      case ReinstallPolicy::Kind::kNever:
        expected = false;
        break;
      case ReinstallPolicy::Kind::kEveryK:
        expected = row.epoch % spec.reinstall.k == 0;
        break;
      case ReinstallPolicy::Kind::kOnLinkEvent: {
        int events = 0;
        for (const auto& ev : trace.events) events += ev.epoch == row.epoch;
        expected = events > 0;
        break;
      }
      case ReinstallPolicy::Kind::kOnSupportDrift:
        // Re-derive the trigger from the recorded pre-reinstall drift, so
        // a trigger that silently stops (or starts) firing flips this row
        // to identical=no even though the amortization factor would pass
        // the gate's one-sided floor from above.
        expected = row.drift > spec.reinstall.theta;
        break;
    }
    if (row.reinstalled != expected) return false;
    // The headline invariant: a skipped Stage 2 costs literally 0 ms, a
    // paid one costs wall time.
    if (!row.reinstalled && row.install_ms != 0.0) return false;
    if (row.reinstalled && !(row.install_ms > 0.0)) return false;
  }
  return true;
}

struct PolicyOutcome {
  ScenarioReport report;     ///< first rep (identity/schedule checks)
  double install_ms = 0.0;   ///< summed over reps
  double route_ms = 0.0;     ///< summed over reps (route + optimum)
  bool deterministic = false;
  bool schedule_ok = false;
};

void bench_scenario(Table& table, const std::string& name,
                    const ScenarioSpec& base, int reps) {
  const ScenarioTrace trace = [&] {
    const Graph g = scenario::make_scenario_graph(base);
    return scenario::generate_trace(g, base);
  }();
  const int epochs = static_cast<int>(trace.demands.size());

  const std::vector<std::string> policies = {
      "every_k:1", "never", "every_k:4", "on_link_event",
      "on_support_drift:0.25"};

  // The whole sweep — per policy, `reps` fresh serial-engine replays plus
  // one 2-thread rerun (the thread-count-invariance probe) — fans out as
  // shared-nothing scenario jobs (scenario::run_scenario_jobs). Safe for
  // the gate because every gated column is deterministic for a fixed
  // seed: the amortization factor, the report identity, and the reinstall
  // schedule survive any co-scheduling; the wall-ms columns were already
  // informational-only. run_scenario_jobs regenerates each job's trace
  // internally (same spec + seed => the identical trace generated above).
  std::vector<scenario::ScenarioJob> jobs;
  for (const std::string& policy : policies) {
    scenario::ScenarioJob job;
    job.spec = base;
    job.spec.reinstall = *ReinstallPolicy::parse(policy);
    for (int r = 0; r < reps; ++r) jobs.push_back(job);
    job.engine_threads = 2;
    jobs.push_back(job);
  }
  std::vector<ScenarioReport> reports =
      scenario::run_scenario_jobs(jobs, /*threads=*/0);

  for (std::size_t p = 0; p < policies.size(); ++p) {
    const std::string& policy = policies[p];
    const std::size_t slot = p * static_cast<std::size_t>(reps + 1);
    PolicyOutcome out;
    for (int r = 0; r < reps; ++r) {
      const ScenarioReport& report = reports[slot + static_cast<std::size_t>(r)];
      out.install_ms += report.total_install_ms;
      out.route_ms += report.total_route_ms + report.total_optimum_ms;
    }
    const ScenarioReport& rerun = reports[slot + static_cast<std::size_t>(reps)];
    out.report = std::move(reports[slot]);
    out.deterministic = reports_identical(out.report, rerun);
    out.schedule_ok =
        reinstall_schedule_ok(jobs[slot].spec, trace, out.report);
    const double total_ms = out.install_ms + out.route_ms;

    // The gated amortization factor: every_1 pays `epochs` installs, this
    // policy pays 1 + reinstalls. Exact for a fixed seed (the trace and
    // every trigger are deterministic), so the baseline match is exact.
    const double amortization =
        static_cast<double>(epochs) /
        static_cast<double>(1 + out.report.reinstalls);

    const std::string instance = name + "/" + policy;
    sor::bench::stage_row(table, "scenario_route", instance, 1, total_ms,
                          reps * epochs, amortization,
                          out.deterministic ? "yes" : "no");
    sor::bench::stage_row(table, "scenario_install", instance, 1,
                          out.install_ms, reps * epochs, 0.0,
                          out.schedule_ok ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M6 — scenario engine",
         "Trace-driven workloads under reinstall-policy sweep: speedup is "
         "the install amortization factor (every_1's paid installs per "
         "install this policy pays; exact for a fixed seed), "
         "scenario_route identity pins thread-count-invariant reports, "
         "scenario_install identity pins the reinstall schedule (never => "
         "0.0 ms Stage 2 after epoch 0).");

  Table table = stage_table();
  const int reps = args.quick ? 3 : 4;

  {
    // Volume churn + random outages on a torus racke substrate.
    sor::scenario::ScenarioSpec spec;
    spec.name = "churn";
    spec.topology = "torus";
    spec.size = args.quick ? 6 : 8;
    spec.backend = args.quick ? "racke:num_trees=4" : "racke:num_trees=6";
    spec.seed = 21;
    spec.epochs = args.quick ? 6 : 12;
    spec.alpha = 4;
    spec.measure_ratio = false;
    spec.model = *sor::scenario::TrafficModelSpec::parse(
        args.quick
            ? "diurnal_gravity:total=64,amplitude=0.5,period=4,max_pairs=48"
            : "diurnal_gravity:total=128,amplitude=0.5,period=6,max_pairs=96");
    spec.churn = {.rate = 0.4, .down_factor = 0.05, .mean_outage = 2};
    bench_scenario(table,
                   "torus(" + std::to_string(spec.size) + "x" +
                       std::to_string(spec.size) + ")+churn",
                   spec, reps);
  }
  {
    // Maximal support churn: a fresh permutation every epoch on valiant.
    sor::scenario::ScenarioSpec spec;
    spec.name = "storm";
    spec.topology = "hypercube";
    spec.size = args.quick ? 5 : 6;
    spec.seed = 23;
    spec.epochs = args.quick ? 6 : 10;
    spec.alpha = 4;
    spec.install_horizon = 1;
    spec.measure_ratio = false;
    spec.model = *sor::scenario::TrafficModelSpec::parse("permutation_storm");
    bench_scenario(table,
                   "hypercube(d=" + std::to_string(spec.size) + ")+storm",
                   spec, reps);
  }

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m6_scenarios", table);
  sink.flush();
  return 0;
}
