// Experiment T1 — Theorems 2.3 & 2.5 (the sparsity/competitiveness curve).
//
// Paper claim: an alpha-sample of a competitive oblivious routing is
// n^{O(1/alpha)}-competitive; each extra path improves competitiveness
// polynomially, reaching polylog at alpha = O(log n / log log n).
//
// We sweep alpha on three topologies, measure the worst and mean
// competitive ratio over an ensemble of random permutation demands, and
// print the curve. Expected shape: steep drop from alpha = 1, flattening
// near alpha ~ log n.
#include <set>

#include "bench_common.h"
#include "core/adversary_search.h"

namespace {

using namespace sor;

void run_instance(bench::Instance& inst, Rng& rng) {
  std::printf("-- %s: %d vertices, %d edges --\n", inst.name.c_str(),
              inst.graph().num_vertices(), inst.graph().num_edges());
  const int n = inst.graph().num_vertices();
  const int num_demands = 5;

  // Demands are fixed across alphas so columns are comparable.
  std::vector<Demand> demands;
  std::vector<double> opt_lb;
  for (int i = 0; i < num_demands; ++i) {
    demands.push_back(gen::random_permutation_demand(n, rng));
    opt_lb.push_back(
        bench::opt_lower_bound(inst.graph(), demands.back(), n <= 150));
  }

  // One pooled pair set so each alpha's sample covers all ensemble demands.
  std::vector<std::pair<int, int>> pairs;
  {
    std::set<std::pair<int, int>> pool;
    for (const Demand& d : demands) {
      for (const auto& [pair, value] : d.entries()) pool.insert(pair);
    }
    pairs.assign(pool.begin(), pool.end());
  }

  Table table({"alpha", "mean ratio", "max ratio", "sparsity"});
  for (int alpha : {1, 2, 3, 4, 6, 8, 12, 16}) {
    // One frozen path system per alpha, reused across the whole ensemble.
    const PathSystem& ps =
        inst.engine.install_paths({.alpha = alpha, .pairs = pairs});
    std::vector<double> ratios;
    for (int i = 0; i < num_demands; ++i) {
      RouteSpec spec;
      spec.mwu.rounds = 400;
      spec.compute_optimum = false;
      spec.compute_lower_bound = false;  // opt_lb[] is the denominator
      const auto report =
          inst.engine.route(demands[static_cast<std::size_t>(i)], spec);
      ratios.push_back(report.congestion /
                       opt_lb[static_cast<std::size_t>(i)]);
    }
    const Summary s = summarize(ratios);
    table.row()
        .cell(alpha)
        .cell(s.mean, 2)
        .cell(s.max, 2)
        .cell(ps.sparsity());
  }
  table.print();
  std::printf("\n");
}

// Random ensembles under-estimate worst-case competitiveness, so we also
// hill-climb for bad permutation demands (adversary search) on a smaller
// hypercube where each candidate demand can be routed quickly.
void run_adversarial(Rng& rng) {
  std::printf(
      "-- adversarially searched demands (hypercube d=5, hill-climbed) --\n");
  auto inst = bench::make_hypercube(5);
  std::vector<int> vertices;
  for (int v = 0; v < inst.graph().num_vertices(); ++v) vertices.push_back(v);
  Table table({"alpha", "worst-found ratio", "improving moves"});
  for (int alpha : {1, 2, 4, 8}) {
    const PathSystem& ps = inst.engine.install_paths({.alpha = alpha});
    AdversarySearchOptions options;
    options.iterations = 40;
    options.pool = 2;
    const auto result =
        find_bad_permutation(inst.graph(), ps, vertices, rng, options);
    table.row()
        .cell(alpha)
        .cell(result.ratio, 2)
        .cell(result.improving_moves);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("T1: sparsity vs competitiveness (Theorems 2.3 & 2.5)",
                "competitive ratio of alpha-samples drops steeply with "
                "alpha and flattens near alpha ~ log n");
  Rng rng(11);
  {
    auto inst = bench::make_hypercube(7);
    run_instance(inst, rng);
  }
  {
    auto inst = bench::make_expander(128, 4, rng);
    run_instance(inst, rng);
  }
  {
    auto inst = bench::make_torus(12, rng);
    run_instance(inst, rng);
  }
  run_adversarial(rng);
  return 0;
}
