// The VERBATIM pre-change free-path MWU — the single canonical "before" of
// the PR-4 flat rewrite, shared by the two consumers that pin the library
// solver to it:
//
//   * bench/bench_m5_free_path.cpp   speedup control + full output-equality
//   * tests/test_free_path_flat.cpp  bit-identity sweeps on random graphs
//
// One shared MWU template computing max_log and the total over all m edges
// every round, and a best response that re-allocates the by-source table,
// the Dijkstra distance vector, the parent array, and the heap on every
// call. Do NOT "optimize" or otherwise edit this — its entire point is to
// stay what the library used to do; both consumers lose their pin if the
// replica drifts.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "graph/shortest_path.h"
#include "lp/min_congestion.h"

namespace sor::legacy_free_path {

template <typename BestResponse>
CongestionResult run_mwu(const Graph& g,
                         const std::vector<Commodity>& commodities,
                         const MinCongestionOptions& options,
                         BestResponse&& best_response) {
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  const std::size_t k = commodities.size();
  CongestionResult result;
  result.edge_load.assign(m, 0.0);
  if (k == 0 || m == 0) {
    result.congestion = 0.0;
    result.lower_bound = 0.0;
    return result;
  }

  std::vector<double> log_x(m, 0.0);
  std::vector<double> x(m, 1.0 / static_cast<double>(m));
  std::vector<double> lengths(m, 0.0);
  std::vector<double> cumulative_load(m, 0.0);
  std::vector<double> round_load(m, 0.0);
  std::vector<std::span<const int>> chosen_edges(k);
  std::vector<double> chosen_len(k, 0.0);

  const double eta =
      std::sqrt(std::log(static_cast<double>(m) + 2.0) /
                static_cast<double>(std::max(options.rounds, 1)));

  double width_norm = 0.0;
  double best_lower = 0.0;
  int round = 0;
  for (round = 0; round < options.rounds; ++round) {
    double max_log = -std::numeric_limits<double>::infinity();
    for (double lx : log_x) max_log = std::max(max_log, lx);
    double total = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      x[e] = std::exp(log_x[e] - max_log);
      total += x[e];
    }
    for (std::size_t e = 0; e < m; ++e) {
      x[e] /= total;
      lengths[e] = x[e] / g.edge(static_cast<int>(e)).capacity;
    }

    best_response(lengths, chosen_edges, chosen_len);

    double dual = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      dual += commodities[j].amount * chosen_len[j];
    }
    best_lower = std::max(best_lower, dual);

    std::fill(round_load.begin(), round_load.end(), 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      for (int e : chosen_edges[j]) {
        round_load[static_cast<std::size_t>(e)] += commodities[j].amount;
      }
    }
    double width = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      cumulative_load[e] += round_load[e];
      width = std::max(width,
                       round_load[e] / g.edge(static_cast<int>(e)).capacity);
    }
    width_norm = std::max(width_norm, width);
    if (width_norm > 0.0) {
      for (std::size_t e = 0; e < m; ++e) {
        log_x[e] += eta * (round_load[e] /
                           g.edge(static_cast<int>(e)).capacity) /
                    width_norm;
      }
    }
    if (round + 1 >= options.min_rounds && best_lower > 0.0) {
      double ub = 0.0;
      for (std::size_t e = 0; e < m; ++e) {
        ub = std::max(ub, cumulative_load[e] /
                              (static_cast<double>(round + 1) *
                               g.edge(static_cast<int>(e)).capacity));
      }
      if (ub <= best_lower * options.target_gap) {
        ++round;
        break;
      }
    }
  }

  const double rounds_used = static_cast<double>(std::max(round, 1));
  double congestion = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    result.edge_load[e] = cumulative_load[e] / rounds_used;
    congestion = std::max(
        congestion, result.edge_load[e] / g.edge(static_cast<int>(e)).capacity);
  }
  result.congestion = congestion;
  result.lower_bound = best_lower;
  result.rounds_used = round;
  return result;
}

inline CongestionResult min_congestion_free(
    const Graph& g, const std::vector<Commodity>& commodities,
    const MinCongestionOptions& options) {
  std::vector<std::vector<int>> owned(commodities.size());
  auto best_response = [&](const std::vector<double>& lengths,
                           std::vector<std::span<const int>>& chosen_edges,
                           std::vector<double>& chosen_len) {
    for (std::size_t j = 0; j < commodities.size(); ++j) {
      owned[j].clear();
      chosen_edges[j] = {};
      chosen_len[j] = 0.0;
    }
    std::vector<std::vector<std::size_t>> by_source(
        static_cast<std::size_t>(g.num_vertices()));
    for (std::size_t j = 0; j < commodities.size(); ++j) {
      if (commodities[j].amount > 0.0) {
        by_source[static_cast<std::size_t>(commodities[j].s)].push_back(j);
      }
    }
    for (int s = 0; s < g.num_vertices(); ++s) {
      const auto& js = by_source[static_cast<std::size_t>(s)];
      if (js.empty()) continue;
      std::vector<int> parent_edge;
      const auto dist = dijkstra(g, s, lengths, &parent_edge);
      for (std::size_t j : js) {
        const int t = commodities[j].t;
        chosen_len[j] = dist[static_cast<std::size_t>(t)];
        int v = t;
        while (v != s) {
          const int e = parent_edge[static_cast<std::size_t>(v)];
          owned[j].push_back(e);
          v = g.edge(e).other(v);
        }
        chosen_edges[j] = owned[j];
      }
    }
  };

  return run_mwu(g, commodities, options, best_response);
}

}  // namespace sor::legacy_free_path
