// Experiment M2 — ablations of the two main design choices (DESIGN.md
// substitutions #1 and #3).
//
// (a) Räcke-style routing = iteratively reweighted FRT trees. Ablate the
//     number of trees and the reweighting strength eta (eta = 0 disables
//     the congestion feedback, leaving i.i.d. FRT trees). Claim: both more
//     trees and reweighting matter; the defaults (12 trees, eta = 6) sit
//     past the knee.
// (b) MWU min-congestion solver. Ablate the round budget and report the
//     certified optimality gap (congestion / dual lower bound). Claim: a
//     few hundred rounds reach a few percent, justifying the default.
#include "bench_common.h"

namespace {

using namespace sor;

void racke_ablation() {
  std::printf("-- (a) Racke trees: num_trees x eta -> oblivious cong/opt --\n");
  // Two structurally different graphs: a torus (uniform) and two cliques
  // joined by few bridges (congestion bottleneck that reweighting must
  // learn to spread over).
  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"torus(8x8)", gen::grid(8, 8, true)});
  cases.push_back({"two_cliques(8,3)", gen::two_cliques(8, 3)});

  for (auto& cs : cases) {
    // Fixed demand ensemble and fixed OPT denominator across all cells.
    std::vector<Demand> demands;
    std::vector<double> opt_lb;
    Rng demand_rng(99);
    for (int i = 0; i < 3; ++i) {
      demands.push_back(
          gen::random_permutation_demand(cs.graph.num_vertices(), demand_rng));
      opt_lb.push_back(bench::opt_lower_bound(cs.graph, demands.back(), true));
    }
    Table table({"num_trees", "eta=0 (iid FRT)", "eta=6 (reweighted)"});
    for (int trees : {1, 2, 4, 8, 16}) {
      std::vector<double> cell;
      for (double eta : {0.0, 6.0}) {
        Rng build_rng(1234);  // same randomness for both etas
        BackendSpec spec{.name = "racke",
                         .params = {{"num_trees", static_cast<double>(trees)},
                                    {"eta", eta}}};
        const auto routing =
            BackendRegistry::instance().make(cs.graph, spec, build_rng);
        double worst = 0.0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
          const double cong = estimate_congestion(
              *routing, demands[i].commodities(), 24, build_rng);
          worst = std::max(worst, cong / opt_lb[i]);
        }
        cell.push_back(worst);
      }
      table.row().cell(trees).cell(cell[0], 2).cell(cell[1], 2);
    }
    std::printf("%s\n", cs.name.c_str());
    table.print();
    std::printf("\n");
  }
}

void mwu_ablation(Rng& rng) {
  std::printf("-- (b) MWU solver: rounds -> certified gap (cong / dual lb) --\n");
  const Graph g = gen::hypercube(6);
  const auto valiant = BackendRegistry::instance().make(g, "valiant", rng);
  const Demand d = gen::random_permutation_demand(g.num_vertices(), rng);
  const PathSystem ps = sample_path_system(*valiant, 4, support_pairs(d), rng);

  Table table({"rounds", "congestion", "dual lb", "certified gap"});
  for (int rounds : {25, 50, 100, 200, 400, 800, 1600}) {
    MinCongestionOptions options;
    options.rounds = rounds;
    options.min_rounds = rounds;  // disable early stopping for the ablation
    options.target_gap = 1.0;
    const auto routed = route_fractional(g, ps, d, options);
    table.row()
        .cell(rounds)
        .cell(routed.congestion, 3)
        .cell(routed.lower_bound, 3)
        .cell(routed.congestion / routed.lower_bound, 3);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("M2: design-choice ablations",
                "(a) Racke = reweighted FRT trees: trees x eta; "
                "(b) MWU round budget vs certified optimality gap");
  Rng rng(81);
  racke_ablation();
  mwu_ablation(rng);
  return 0;
}
