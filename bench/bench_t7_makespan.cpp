// Experiment T7 — the completion-time objective is the real makespan.
//
// Section 7 optimizes "congestion + dilation" as a proxy for the time
// until all packets arrive, justified by the classic O(C + D) scheduling
// results [LMR94]. This experiment closes the loop with the store-and-
// forward simulator: route integrally via the semi-oblivious pipeline,
// schedule the packets, and compare the measured makespan against C + D
// and against the hop-bounded offline optimum opt^(h).
//
// Expected shape: makespan / (C + D) is a small constant (~1) across
// schedules and topologies, so optimizing C + D (what the paper's routing
// does) indeed optimizes delivery time.
#include "bench_common.h"
#include "core/completion_time.h"
#include "core/rounding.h"
#include "lp/hop_bounded.h"
#include "sim/packet_sim.h"

namespace {

using namespace sor;

const char* policy_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kFifo:
      return "fifo";
    case SchedulePolicy::kFurthestToGo:
      return "furthest";
    case SchedulePolicy::kRandomPriority:
      return "random";
  }
  return "?";
}

void run_instance(const bench::Instance& inst, Rng& rng, Table& table) {
  const int n = inst.graph().num_vertices();
  const Demand d = gen::random_permutation_demand(n, rng);

  // Multi-scale candidates; completion-time routing; integral rounding.
  const auto scales = geometric_hop_scales(n, 2.0);
  const PathSystem ps = sample_multi_scale_path_system(
      inst.graph(), /*alpha=*/4, scales, support_pairs(d), rng);
  MinCongestionOptions options;
  options.rounds = 300;
  const auto balanced = route_completion_time(inst.graph(), ps, d, options);
  auto integral =
      round_randomized(inst.graph(), balanced.routing, rng, 8);
  local_search_improve(inst.graph(), integral);

  std::vector<Path> packets;
  for (std::size_t j = 0; j < integral.choices.size(); ++j) {
    for (int idx : integral.choices[j]) {
      packets.push_back(integral.paths[j][static_cast<std::size_t>(idx)]);
    }
  }

  // Offline h-hop optimum at the chosen dilation as the yardstick.
  const int h = std::max(1, balanced.dilation);
  const auto opt_h =
      min_congestion_hop_bounded(inst.graph(), d.commodities(), h, options);

  for (SchedulePolicy policy :
       {SchedulePolicy::kFifo, SchedulePolicy::kFurthestToGo,
        SchedulePolicy::kRandomPriority}) {
    const auto sim = simulate_packets(inst.graph(), packets, policy, rng);
    table.row()
        .cell(inst.name)
        .cell(policy_name(policy))
        .cell(sim.congestion, 1)
        .cell(sim.dilation)
        .cell(sim.makespan)
        .cell(sim.makespan_over_cd(), 2)
        .cell(opt_h.lower_bound + static_cast<double>(h), 1);
  }
}

}  // namespace

int main() {
  bench::banner("T7: measured makespan vs congestion + dilation ([LMR94])",
                "scheduling the integral routing delivers in O(C + D) "
                "steps, validating the Section 7 objective");
  Rng rng(61);
  Table table({"instance", "schedule", "C", "D", "makespan", "mk/(C+D)",
               "opt^(h) lb + h"});
  {
    auto inst = bench::make_hypercube(6);
    run_instance(inst, rng, table);
  }
  {
    auto inst = bench::make_torus(8, rng);
    run_instance(inst, rng, table);
  }
  {
    auto inst = bench::make_expander(64, 4, rng);
    run_instance(inst, rng, table);
  }
  table.print();
  std::printf(
      "\nreading: makespan stays within a small constant of C + D for all\n"
      "schedules, so the congestion+dilation objective the semi-oblivious\n"
      "router minimizes is the right proxy for completion time.\n\n");
  return 0;
}
