// Experiment M3 — parallel scaling of the shared-nothing concurrency layer.
//
// Two hot paths, each swept over 1/2/4/8 worker threads:
//   construct    Räcke tree-distribution build (per-wave FRT trees built
//                concurrently from seed-split streams) on an expander
//   route_batch  many revealed permutation demands routed concurrently
//                over one frozen PathSystem (expander + hypercube)
//
// Besides wall-clock and speedup-vs-1-thread, every row re-checks the
// library's determinism contract: the parallel output must be
// BIT-IDENTICAL to the 1-thread output at the same seed (seed-split
// streams, never a shared generator). A row with identical=no is a bug,
// not a measurement.
//
//   bench_m3_parallel_scaling [--quick] [--json PATH]
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "oblivious/racke.h"

namespace {

using namespace sor;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr int kThreadSweep[] = {1, 2, 4, 8};

/// Deterministic route fingerprint of a Räcke distribution: every tree's
/// route for a spread of pairs. Equal signatures <=> equal trees (for
/// these probes), which is the bit-identical construction check.
std::vector<Path> racke_signature(const RackeRouting& routing, int n) {
  std::vector<Path> signature;
  for (int tree = 0; tree < routing.num_trees(); ++tree) {
    for (int probe = 0; probe < 8; ++probe) {
      const int s = (probe * 37) % n;
      const int t = (probe * 53 + n / 2) % n;
      if (s == t) continue;
      signature.push_back(routing.tree_route(tree, s, t));
    }
  }
  return signature;
}

void sweep_racke_construction(Table& table, bool quick) {
  const int n = quick ? 64 : 200;
  const int degree = 4;
  const int num_trees = quick ? 8 : 16;
  Rng graph_rng(7);
  const Graph g = gen::random_regular(n, degree, graph_rng);
  const std::string instance =
      "expander(n=" + std::to_string(n) + ",trees=" + std::to_string(num_trees) +
      ")";

  std::vector<Path> serial_signature;
  double serial_ms = 0.0;
  for (int threads : kThreadSweep) {
    RackeOptions options;
    options.num_trees = num_trees;
    options.threads = threads;
    Rng rng(1234);  // same seed every sweep point: outputs must coincide
    const auto start = Clock::now();
    RackeRouting routing(g, options, rng);
    const double elapsed = ms_since(start);
    const std::vector<Path> signature = racke_signature(routing, n);
    if (threads == 1) {
      serial_signature = signature;
      serial_ms = elapsed;
    }
    sor::bench::stage_row(table, "construct", instance, threads, elapsed, 1,
                          elapsed > 0.0 ? serial_ms / elapsed : 0.0,
                          signature == serial_signature ? "yes" : "no");
  }
}

void sweep_route_batch(Table& table, const std::string& instance_name,
                       SorEngine& engine, bool quick) {
  const int n = engine.graph().num_vertices();
  const int batch_size = quick ? 8 : 32;
  Rng demand_rng(99);
  std::vector<Demand> demands;
  demands.reserve(static_cast<std::size_t>(batch_size));
  for (int b = 0; b < batch_size; ++b) {
    demands.push_back(gen::random_permutation_demand(n, demand_rng));
  }
  engine.set_threads(1);
  engine.install_paths(SamplingSpec::for_demands(demands, 4));

  RouteSpec spec;
  spec.compute_optimum = false;
  spec.compute_lower_bound = false;
  spec.mwu.target_gap = 1.0;  // fixed MWU rounds -> stable per-demand cost

  // The determinism reference: a plain serial route() loop, which
  // route_batch must reproduce bit-for-bit at every thread count (the
  // fractional stage consumes no randomness, so the engine stream the
  // loop advances does not enter these solves).
  std::vector<double> loop_congestion;
  loop_congestion.reserve(demands.size());
  for (const Demand& d : demands) {
    loop_congestion.push_back(engine.route(d, spec).congestion);
  }

  double serial_ms = 0.0;
  for (int threads : kThreadSweep) {
    engine.set_threads(threads);
    const BatchReport batch = engine.route_batch(demands, spec);
    if (threads == 1) serial_ms = batch.wall_ms;
    bool identical = batch.reports.size() == loop_congestion.size();
    for (std::size_t i = 0; identical && i < loop_congestion.size(); ++i) {
      identical = batch.reports[i].congestion == loop_congestion[i];
    }
    sor::bench::stage_row(table, "route_batch",
                          instance_name + ",batch=" + std::to_string(batch_size),
                          threads, batch.wall_ms, batch_size,
                          batch.wall_ms > 0.0 ? serial_ms / batch.wall_ms : 0.0,
                          identical ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M3 — parallel scaling",
         "ThreadPool fan-out of racke construction and route_batch: "
         "wall-clock falls with threads while outputs stay bit-identical "
         "to the 1-thread run (seed-split determinism).");

  Table table = stage_table();
  sweep_racke_construction(table, args.quick);

  {
    const int n = args.quick ? 64 : 128;
    Rng rng(5);
    Instance expander = make_expander(n, 4, rng, args.quick ? 6 : 10);
    sweep_route_batch(table, expander.name, expander.engine, args.quick);
  }
  {
    const int dim = args.quick ? 6 : 8;
    Instance cube = make_hypercube(dim, 3);
    sweep_route_batch(table, cube.name, cube.engine, args.quick);
  }

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m3_parallel_scaling", table);
  sink.flush();
  return 0;
}
