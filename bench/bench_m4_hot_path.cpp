// Experiment M4 — flat-memory hot-path throughput (PathStore substrate).
//
// Measures the staged pipeline's single-thread throughput on the m1
// substrates: build (backend construction), install (path sampling +
// interning), route (MWU rate selection over the frozen PathSystem), and
// route_batch. For the route stage — the per-demand serving loop and the
// target of the PathStore change — the harness ALSO runs a verbatim copy
// of the pre-change representation (vertex-sequence candidates, hash-based
// edge resolution per call, nested vector-of-vector edge ids) on the same
// inputs, reports new-vs-legacy speedup, and checks the outputs are
// BIT-IDENTICAL. A row with identical=no is a bug, not a measurement.
//
//   bench_m4_hot_path [--quick] [--json PATH]
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/shortest_path.h"

namespace {

using namespace sor;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Pre-change reference implementation (the PR 2 era representation), kept
// verbatim as the "before" of the before/after measurement: candidates are
// vertex-sequence Paths, edge ids are re-resolved through the hash map on
// every solve, and the MWU inner loop iterates a nested
// vector<vector<vector<int>>>. Do not "optimize" this — its point is to be
// what the library used to do.
// ---------------------------------------------------------------------------
namespace legacy {

template <typename BestResponse>
CongestionResult run_mwu(const Graph& g,
                         const std::vector<Commodity>& commodities,
                         const MinCongestionOptions& options,
                         BestResponse&& best_response) {
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  const std::size_t k = commodities.size();
  CongestionResult result;
  result.edge_load.assign(m, 0.0);
  if (k == 0 || m == 0) {
    result.congestion = 0.0;
    result.lower_bound = 0.0;
    return result;
  }

  std::vector<double> log_x(m, 0.0);
  std::vector<double> x(m, 1.0 / static_cast<double>(m));
  std::vector<double> lengths(m, 0.0);
  std::vector<double> cumulative_load(m, 0.0);
  std::vector<double> round_load(m, 0.0);
  std::vector<std::vector<int>> chosen_edges(k);
  std::vector<double> chosen_len(k, 0.0);

  const double eta =
      std::sqrt(std::log(static_cast<double>(m) + 2.0) /
                static_cast<double>(std::max(options.rounds, 1)));

  double width_norm = 0.0;
  double best_lower = 0.0;
  int round = 0;
  for (round = 0; round < options.rounds; ++round) {
    double max_log = -std::numeric_limits<double>::infinity();
    for (double lx : log_x) max_log = std::max(max_log, lx);
    double total = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      x[e] = std::exp(log_x[e] - max_log);
      total += x[e];
    }
    for (std::size_t e = 0; e < m; ++e) {
      x[e] /= total;
      lengths[e] = x[e] / g.edge(static_cast<int>(e)).capacity;
    }

    best_response(lengths, chosen_edges, chosen_len);

    double dual = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      dual += commodities[j].amount * chosen_len[j];
    }
    best_lower = std::max(best_lower, dual);

    std::fill(round_load.begin(), round_load.end(), 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      for (int e : chosen_edges[j]) {
        round_load[static_cast<std::size_t>(e)] += commodities[j].amount;
      }
    }
    double width = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      cumulative_load[e] += round_load[e];
      width = std::max(width,
                       round_load[e] / g.edge(static_cast<int>(e)).capacity);
    }
    width_norm = std::max(width_norm, width);
    if (width_norm > 0.0) {
      for (std::size_t e = 0; e < m; ++e) {
        log_x[e] += eta * (round_load[e] /
                           g.edge(static_cast<int>(e)).capacity) /
                    width_norm;
      }
    }

    if (round + 1 >= options.min_rounds && best_lower > 0.0) {
      double ub = 0.0;
      for (std::size_t e = 0; e < m; ++e) {
        ub = std::max(ub, cumulative_load[e] /
                              (static_cast<double>(round + 1) *
                               g.edge(static_cast<int>(e)).capacity));
      }
      if (ub <= best_lower * options.target_gap) {
        ++round;
        break;
      }
    }
  }

  const double rounds_used = static_cast<double>(std::max(round, 1));
  double congestion = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    result.edge_load[e] = cumulative_load[e] / rounds_used;
    congestion = std::max(
        congestion, result.edge_load[e] / g.edge(static_cast<int>(e)).capacity);
  }
  result.congestion = congestion;
  result.lower_bound = best_lower;
  result.rounds_used = round;
  return result;
}

double congestion_of_weights(const Graph& g,
                             const std::vector<std::vector<Path>>& paths,
                             const std::vector<std::vector<double>>& weights,
                             std::vector<double>* edge_load) {
  std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
  for (std::size_t j = 0; j < paths.size(); ++j) {
    for (std::size_t i = 0; i < paths[j].size(); ++i) {
      if (weights[j][i] <= 0.0) continue;
      for (int e : path_edge_ids(g, paths[j][i])) {
        load[static_cast<std::size_t>(e)] += weights[j][i];
      }
    }
  }
  double congestion = 0.0;
  for (int e = 0; e < g.num_edges(); ++e) {
    congestion = std::max(congestion,
                          load[static_cast<std::size_t>(e)] / g.edge(e).capacity);
  }
  if (edge_load) *edge_load = std::move(load);
  return congestion;
}

CongestionResult min_congestion_over_paths(
    const Graph& g, const std::vector<Commodity>& commodities,
    const std::vector<std::vector<Path>>& candidate_paths,
    const MinCongestionOptions& options) {
  const std::size_t k = commodities.size();

  // Per-call edge resolution: one hash lookup per hop per candidate.
  std::vector<std::vector<std::vector<int>>> edge_ids(k);
  for (std::size_t j = 0; j < k; ++j) {
    edge_ids[j].reserve(candidate_paths[j].size());
    for (const Path& p : candidate_paths[j]) {
      edge_ids[j].push_back(path_edge_ids(g, p));
    }
  }

  std::vector<std::vector<int>> counts(k);
  for (std::size_t j = 0; j < k; ++j) {
    counts[j].assign(candidate_paths[j].size(), 0);
  }

  auto best_response = [&](const std::vector<double>& lengths,
                           std::vector<std::vector<int>>& chosen_edges,
                           std::vector<double>& chosen_len) {
    for (std::size_t j = 0; j < k; ++j) {
      chosen_edges[j].clear();
      chosen_len[j] = 0.0;
      if (commodities[j].amount <= 0.0 || candidate_paths[j].empty()) continue;
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < edge_ids[j].size(); ++i) {
        double len = 0.0;
        for (int e : edge_ids[j][i]) len += lengths[static_cast<std::size_t>(e)];
        if (len < best) {
          best = len;
          best_i = i;
        }
      }
      chosen_edges[j] = edge_ids[j][best_i];
      chosen_len[j] = best;
      ++counts[j][best_i];
    }
  };

  CongestionResult result = run_mwu(g, commodities, options, best_response);

  result.path_weights.assign(k, {});
  int total_rounds = std::max(result.rounds_used, 1);
  for (std::size_t j = 0; j < k; ++j) {
    result.path_weights[j].assign(candidate_paths[j].size(), 0.0);
    if (commodities[j].amount <= 0.0) continue;
    for (std::size_t i = 0; i < candidate_paths[j].size(); ++i) {
      result.path_weights[j][i] = commodities[j].amount *
                                  static_cast<double>(counts[j][i]) /
                                  static_cast<double>(total_rounds);
    }
  }
  result.congestion = congestion_of_weights(g, candidate_paths,
                                            result.path_weights,
                                            &result.edge_load);
  return result;
}

/// Pre-change route_fractional: gather vertex-sequence candidates, solve
/// over the nested representation.
CongestionResult route_fractional(const Graph& g, const PathSystem& ps,
                                  const Demand& d,
                                  const MinCongestionOptions& options) {
  const auto commodities = d.commodities();
  std::vector<std::vector<Path>> paths;
  paths.reserve(commodities.size());
  for (const Commodity& c : commodities) {
    paths.push_back(ps.paths(c.s, c.t));
  }
  // Qualified: ADL would otherwise also find (and prefer-tie with) the
  // library's overload on the same argument types.
  return legacy::min_congestion_over_paths(g, commodities, paths, options);
}

}  // namespace legacy

// ---------------------------------------------------------------------------

/// A sparse "tenant" demand: `pairs` random unit-demand pairs on [0, n).
/// This is the serving-loop shape the route stage is measured on — each
/// revealed demand touches a sliver of a large shared substrate, which is
/// exactly where the flat representation's demand-footprint-proportional
/// round cost beats the pre-change full-graph passes.
Demand sparse_demand(int n, int pairs, Rng& rng) {
  Demand d;
  for (int i = 0; i < pairs; ++i) {
    const int s = rng.uniform_int(0, n - 1);
    int t = rng.uniform_int(0, n - 1);
    if (s == t) t = (t + 1) % n;
    d.set(s, t, 1.0);
  }
  return d;
}

void bench_instance(Table& table, const std::string& name, Graph graph,
                    const std::string& backend_spec, std::uint64_t seed,
                    int alpha, int batch_size, int reps) {
  // ---- build --------------------------------------------------------------
  const auto build_start = Clock::now();
  sor::bench::Instance inst{
      name, SorEngine::build(std::move(graph), backend_spec, seed)};
  const double build_ms = ms_since(build_start);
  sor::bench::stage_row(table, "build", name, 1, build_ms, 1, 0.0, "");

  SorEngine& engine = inst.engine;
  const int n = engine.graph().num_vertices();
  Rng demand_rng(seed ^ 0x9e37u);
  std::vector<Demand> demands;
  demands.reserve(static_cast<std::size_t>(batch_size));
  for (int b = 0; b < batch_size; ++b) {
    demands.push_back(sparse_demand(n, /*pairs=*/16, demand_rng));
  }
  const SamplingSpec sampling = SamplingSpec::for_demands(demands, alpha);

  // ---- install (sampling + interning) -------------------------------------
  double install_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    engine.install_paths(sampling);
    install_ms += ms_since(start);
  }
  sor::bench::stage_row(table, "install", name, 1, install_ms, reps, 0.0, "");

  // ---- route: new flat representation vs pre-change representation --------
  const PathSystem& ps = engine.paths();
  RouteSpec spec;
  spec.compute_optimum = false;
  spec.compute_lower_bound = false;

  std::vector<SemiObliviousSolution> new_solutions;
  double route_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (const Demand& d : demands) {
      const auto start = Clock::now();
      RouteReport report = engine.route(d, spec);
      route_ms += ms_since(start);
      if (r == 0) new_solutions.push_back(std::move(report.solution));
    }
  }

  // Full-output bit-identity: congestion, dual bound, per-edge loads AND
  // per-path weights must all equal the pre-change representation's —
  // congestion alone is a max and could mask a divergence underneath.
  double legacy_ms = 0.0;
  bool identical = true;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const auto start = Clock::now();
      const CongestionResult result = legacy::route_fractional(
          engine.graph(), ps, demands[i], spec.mwu);
      legacy_ms += ms_since(start);
      if (r == 0) {
        const SemiObliviousSolution& fast = new_solutions[i];
        identical = identical && result.congestion == fast.congestion &&
                    result.lower_bound == fast.lower_bound &&
                    result.edge_load == fast.edge_load &&
                    result.path_weights == fast.weights;
      }
    }
  }

  const int route_ops = reps * batch_size;
  sor::bench::stage_row(table, "route", name, 1, route_ms, route_ops,
                        route_ms > 0.0 ? legacy_ms / route_ms : 0.0,
                        identical ? "yes" : "no");
  sor::bench::stage_row(table, "route_legacy", name, 1, legacy_ms, route_ops,
                        1.0, identical ? "yes" : "no");

  // ---- sim edge resolution: FlatAdjacency arena-append vs hash-per-hop ----
  // The packet simulator's setup resolves every packet's hops into one
  // flat arena; since PR 5 that resolution appends over a FlatAdjacency
  // snapshot (contiguous early-exit arc scan, zero per-path temporaries)
  // instead of the pre-change per-path path_edge_ids temp + hash lookup
  // per hop. Resolve every installed candidate path both ways: arenas
  // must be bit-identical (same canonical parallel-edge choice), the
  // scan-and-append is the speedup.
  {
    std::vector<const Path*> all_paths;
    for (const auto& [pair, list] : ps.entries()) {
      for (const Path& p : list) all_paths.push_back(&p);
    }
    const FlatAdjacency adj(engine.graph());
    double flat_ms = 0.0;
    double hash_ms = 0.0;
    bool ids_identical = true;
    std::vector<int> flat_arena;
    std::vector<int> hash_arena;
    // Resolution is ns-scale per path; sweep the path set many times so
    // the gated ratio rests on multi-ms totals.
    const int resolve_reps = reps * 16;
    for (int r = 0; r < resolve_reps; ++r) {
      flat_arena.clear();
      const auto flat_start = Clock::now();
      for (const Path* p : all_paths) {
        append_path_edge_ids(adj, engine.graph(), *p, flat_arena);
      }
      flat_ms += ms_since(flat_start);
      hash_arena.clear();
      const auto hash_start = Clock::now();
      for (const Path* p : all_paths) {
        // Verbatim pre-change simulator setup: temp vector per path, one
        // edge_between hash per hop, then the arena copy.
        const auto ids = path_edge_ids(engine.graph(), *p);
        hash_arena.insert(hash_arena.end(), ids.begin(), ids.end());
      }
      hash_ms += ms_since(hash_start);
      if (r == 0) {
        ids_identical = !flat_arena.empty() && flat_arena == hash_arena;
      }
    }
    const int resolve_ops = resolve_reps * static_cast<int>(all_paths.size());
    sor::bench::stage_row(table, "sim_resolve", name, 1, flat_ms, resolve_ops,
                          flat_ms > 0.0 ? hash_ms / flat_ms : 0.0,
                          ids_identical ? "yes" : "no");
  }

  // ---- route_batch (single-thread serving loop through the facade) --------
  double batch_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const BatchReport batch = engine.route_batch(demands, spec);
    batch_ms += ms_since(start);
    assert(batch.reports.size() == demands.size());
    (void)batch;
  }
  sor::bench::stage_row(table, "route_batch",
                        name + ",batch=" + std::to_string(batch_size), 1,
                        batch_ms, reps * batch_size, 0.0, "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M4 — flat-memory hot path",
         "PathStore substrate: interned vertex+edge-id spans through the "
         "whole pipeline. The route stage is measured against a verbatim "
         "copy of the pre-change representation (hash-per-hop resolution, "
         "nested vectors); outputs must be bit-identical, speedup is the "
         "point.");

  Table table = stage_table();

  const int reps = args.quick ? 2 : 3;
  {
    const int dim = args.quick ? 8 : 10;
    bench_instance(table, "hypercube(d=" + std::to_string(dim) + ")+valiant",
                   sor::gen::hypercube(dim), "valiant", 2, /*alpha=*/8,
                   /*batch=*/args.quick ? 4 : 8, reps);
  }
  {
    const int side = args.quick ? 24 : 32;
    const int trees = args.quick ? 4 : 6;
    bench_instance(
        table,
        "torus(" + std::to_string(side) + "x" + std::to_string(side) +
            ")+racke",
        sor::gen::grid(side, side, /*wrap=*/true),
        "racke:num_trees=" + std::to_string(trees), 3, /*alpha=*/8,
        /*batch=*/args.quick ? 4 : 8, reps);
  }

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m4_hot_path", table);
  sink.flush();
  return 0;
}
