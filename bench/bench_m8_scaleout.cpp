// Experiment M8 — scale-out routing: streaming million-entry demand
// epochs through aggregation and sharded engines.
//
// A SyntheticEntrySource streams N single-pair demand entries (skewed
// draw from a fixed pool of P pairs, values in {1, 2}) straight into
// SorEngine::route_batch in aggregate-only mode — the batch is NEVER
// materialized, and the engine's working set is a function of the number
// of DISTINCT demands (<= 2P), not of N. Rows, canonical stage schema:
//
//   scaleout_route  one row per (threads, shards) config over the SAME
//                   stream. ops = N entries, so ops_per_sec is the
//                   headline demands/sec (machine-dependent; the gate
//                   only requires it nonzero). speedup = the AGGREGATION
//                   FACTOR N / num_groups — deterministic for a fixed
//                   seed, so the baseline pins the coalescing behavior
//                   itself, immune to wall-clock noise. identical = the
//                   config's BatchReport (global loads, congestion,
//                   group counts) is bit-identical to the 1-thread/
//                   1-shard reference — the scale-out determinism
//                   contract of api/sor_engine.h. The CI gate requires
//                   identical=yes on EVERY row of this phase.
//   scaleout_mem    RSS growth in MB across a measured re-run after a
//                   warm-up run (m7 discipline, ops = 1): aggregate-only
//                   mode must hold memory flat in the stream length.
//                   Machine-dependent, so the gate allows slack
//                   (--mem-flat scaleout_mem:1.25:8.0).
//
// A row with identical=no is a bug, not a measurement.
//
//   bench_m8_scaleout [--quick] [--json PATH]
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "runtime/alloc_stats.h"
#include "scale/demand_source.h"

namespace {

using namespace sor;

/// Streams N single-pair entries from a fixed pair pool without ever
/// materializing them: entry i is a deterministic function of (seed, i),
/// so two sources with the same parameters produce the identical stream.
/// The pair index is min of two uniform draws — a skewed (triangular)
/// popularity profile, so hot pairs coalesce into heavy groups the way a
/// real ingestion feed's duplicates would.
class SyntheticEntrySource final : public scale::DemandSource {
 public:
  SyntheticEntrySource(std::span<const std::pair<int, int>> pool,
                       std::size_t count, std::uint64_t seed)
      : pool_(pool), count_(count), rng_(seed) {}

  bool next(std::span<const DemandEntry>& out) override {
    if (produced_ >= count_) return false;
    const std::uint64_t a = rng_.uniform_u64(pool_.size());
    const std::uint64_t b = rng_.uniform_u64(pool_.size());
    const auto& [s, t] = pool_[a < b ? a : b];
    entry_.s = s;
    entry_.t = t;
    entry_.value = rng_.bernoulli(0.5) ? 1.0 : 2.0;
    out = std::span<const DemandEntry>(&entry_, 1);
    ++produced_;
    return true;
  }

  std::size_t size_hint() const override { return count_; }

 private:
  std::span<const std::pair<int, int>> pool_;
  std::size_t count_ = 0;
  std::size_t produced_ = 0;
  Rng rng_;
  DemandEntry entry_;
};

/// P distinct ordered pairs over [0, n), deterministic per seed.
std::vector<std::pair<int, int>> make_pair_pool(int n, int count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> pool;
  while (static_cast<int>(pool.size()) < count) {
    const int s = rng.uniform_int(0, n - 1);
    const int t = rng.uniform_int(0, n - 1);
    if (s == t) continue;
    const std::pair<int, int> p(s, t);
    bool seen = false;
    for (const auto& q : pool) seen = seen || q == p;
    if (!seen) pool.push_back(p);
  }
  return pool;
}

/// The mode-invariant outputs two configs must agree on, bit for bit.
bool batches_identical(const BatchReport& a, const BatchReport& b) {
  return a.num_demands == b.num_demands && a.num_groups == b.num_groups &&
         a.max_congestion == b.max_congestion &&
         a.max_competitive_ratio == b.max_competitive_ratio &&
         a.global_edge_load == b.global_edge_load &&
         a.global_congestion == b.global_congestion;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M8 — scale-out routing",
         "Streams a million-entry demand epoch (quick: 100k+) through the "
         "aggregate-only route_batch pipeline: speedup is the aggregation "
         "factor entries/groups (deterministic per seed), ops_per_sec the "
         "headline demands/sec, identical pins bit-identity of every "
         "(threads, shards) config against the 1-thread/1-shard reference, "
         "and scaleout_mem pins flat memory in the stream length.");

  const std::size_t entries = args.quick ? 120'000 : 1'200'000;
  const int dim = args.quick ? 6 : 7;
  const int pool_size = args.quick ? 96 : 256;
  const std::uint64_t pool_seed = 61, stream_seed = 67, engine_seed = 71;
  const std::string base = (args.quick ? "hypercube6-120k" : "hypercube7-1m");

  const Graph g = gen::hypercube(dim);
  const auto pool = make_pair_pool(g.num_vertices(), pool_size, pool_seed);

  // ONE engine for every config: set_threads() re-widens the pool and
  // BatchSpec::shards re-partitions scratch between runs, so the sweep
  // also proves live re-sharding of a warm engine. Paths install once.
  SorEngine engine =
      SorEngine::build(gen::hypercube(dim), "racke:num_trees=4", engine_seed);
  {
    SamplingSpec sampling;
    sampling.alpha = args.quick ? 3 : 4;
    sampling.all_pairs = false;
    sampling.pairs = pool;
    engine.install_paths(sampling);
  }

  RouteSpec route_spec;
  route_spec.mwu.rounds = 60;
  BatchSpec lean;
  lean.keep_reports = false;
  lean.aggregate_duplicates = true;

  auto run_config = [&](int threads, int shards) {
    engine.set_threads(threads);
    BatchSpec spec = lean;
    spec.shards = shards;
    SyntheticEntrySource source(pool, entries, stream_seed);
    return engine.route_batch(source, route_spec, spec);
  };

  Table table = stage_table();

  // Reference: serial, unsharded. Its aggregation factor is the gated
  // speedup on every row (same stream => same factor for all configs).
  const auto ref_start = std::chrono::steady_clock::now();
  const BatchReport reference = run_config(1, 1);
  const double ref_ms = ms_since(ref_start);
  const double agg_factor = static_cast<double>(reference.num_demands) /
                            static_cast<double>(reference.num_groups);
  std::printf(
      "%s: %zu entries -> %zu groups (aggregation factor %.1f), "
      "reference wall %.0f ms (%.0f demands/sec)\n",
      base.c_str(), reference.num_demands, reference.num_groups, agg_factor,
      ref_ms, reference.demands_per_sec());
  stage_row(table, "scaleout_route", base + "/shards=1", 1, ref_ms,
            static_cast<int>(entries), agg_factor, "yes");

  // Thread sweep at 1 shard, shard sweep at 4 threads — every config must
  // reproduce the reference bit for bit.
  const std::pair<int, int> configs[] = {{2, 1}, {4, 1}, {8, 1},
                                         {4, 2}, {4, 4}};
  for (const auto& [threads, shards] : configs) {
    const auto start = std::chrono::steady_clock::now();
    const BatchReport run = run_config(threads, shards);
    const double ms = ms_since(start);
    const bool same = batches_identical(reference, run);
    std::printf("  threads=%d shards=%d: wall %.0f ms, identical=%s\n",
                threads, shards, ms, same ? "yes" : "no");
    stage_row(table, "scaleout_route",
              base + "/shards=" + std::to_string(shards), threads, ms,
              static_cast<int>(entries), agg_factor, same ? "yes" : "no");
  }

  // Flat-memory gauge, m7 discipline: the configs above were the warm-up;
  // RSS growth across one more full streaming run must be ~0 (the whole
  // point of aggregate-only mode at 10^6 entries).
  {
    engine.set_threads(1);
    const std::size_t rss_before = runtime::rss_bytes();
    SyntheticEntrySource source(pool, entries, stream_seed);
    const BatchReport rerun = engine.route_batch(source, route_spec, lean);
    const std::size_t rss_after = runtime::rss_bytes();
    const double growth_mb =
        rss_after > rss_before
            ? static_cast<double>(rss_after - rss_before) / (1024.0 * 1024.0)
            : 0.0;
    std::printf("  measured re-run: rss growth %.2f MB, identical=%s\n",
                growth_mb, batches_identical(reference, rerun) ? "yes" : "no");
    stage_row(table, "scaleout_mem", base, 1, growth_mb, 1, 0.0,
              batches_identical(reference, rerun) ? "yes" : "no");
  }

  std::printf("\n");
  table.print();

  JsonSink sink(args.json_path);
  sink.add("m8_scaleout", table);
  sink.flush();
  return 0;
}
