// Experiment T2 — Section 1.1 deterministic-routing consequence.
//
// Paper claim (via [KKT91]): any deterministic oblivious routing on the
// hypercube suffers ~sqrt(n) congestion on some permutation — greedy
// bit-fixing exhibits it on bit-reversal/transpose — while a deterministic
// selection of O(log n) sampled paths with adaptive rate choice stays
// polylogarithmic.
//
// Expected shape: the greedy column doubles with every +2 dims (sqrt(n)
// scaling); the semi-oblivious column stays flat-ish near the optimum.
#include "bench_common.h"

namespace {

using namespace sor;

void run() {
  bench::banner(
      "T2: deterministic hypercube routing (KKT91 barrier vs few paths)",
      "greedy 1-path congestion grows ~sqrt(n); alpha = log n sampled "
      "paths stay polylog");
  Rng rng(5);
  Table table({"dim", "n", "demand", "greedy-1path", "semi(a=logn)",
               "opt-lb", "greedy/lb", "semi/lb"});
  for (int dim : {4, 6, 8, 10}) {
    bench::Instance inst = bench::make_hypercube(dim, /*seed=*/5 + dim);
    const Graph& cube = inst.graph();
    const auto greedy =
        BackendRegistry::instance().make(cube, "greedy_bitfix", rng);
    for (const char* which : {"bit-reversal", "transpose"}) {
      const Demand d = std::string(which) == "bit-reversal"
                           ? gen::bit_reversal_demand(dim)
                           : gen::transpose_demand(dim);
      const double greedy_cong =
          estimate_congestion(*greedy, d.commodities(), 1, rng);
      const int alpha = dim;  // Theta(log n)
      inst.engine.install_paths(SamplingSpec::for_demand(d, alpha));
      RouteSpec spec;
      spec.mwu.rounds = 300;
      spec.compute_optimum = false;
      spec.compute_lower_bound = false;  // lb computed below
      const auto semi = inst.engine.route(d, spec);
      const double lb = bench::opt_lower_bound(cube, d, dim <= 6);
      table.row()
          .cell(std::to_string(dim) + " " + which)
          .cell(cube.num_vertices())
          .cell(d.size(), 0)
          .cell(greedy_cong, 1)
          .cell(semi.congestion, 2)
          .cell(lb, 2)
          .cell(greedy_cong / lb, 1)
          .cell(semi.congestion / lb, 2);
    }
  }
  table.print();
  std::printf(
      "\nreading: greedy/lb roughly doubles per +2 dims (the sqrt(n)\n"
      "barrier); semi/lb stays bounded — few random paths suffice.\n\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
