// Experiment M5 — flat free-path MWU throughput (the offline-optimum / LP
// oracle behind every competitive ratio and lower-bound experiment).
//
// Measures min_congestion_free — scratch-reusing Dijkstra best responses,
// incremental max_log/exp caching, sparse touched-set aggregation — against
// a VERBATIM copy of the pre-change implementation (shared run_mwu template
// + naive Dijkstra best response, per-round allocations) on the same
// inputs. Default-mode outputs must be BIT-IDENTICAL (congestion, dual
// bound, rounds used, every edge load); a row with identical=no is a bug,
// not a measurement. The free_route_fastmath rows additionally run the
// opt-in fast-math mode, where "identical" means WITHIN the documented
// epsilon contract (|delta| <= 0.05 * max(1, exact) plus cross-valid
// certificates; see MinCongestionOptions::fast_math).
//
//   bench_m5_free_path [--quick] [--json PATH]
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/shortest_path.h"
#include "legacy_free_path_mwu.h"
#include "lp/min_congestion.h"

namespace {

using namespace sor;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The verbatim pre-change reference lives in legacy_free_path_mwu.h (one
// canonical "before", shared with tests/test_free_path_flat.cpp).
namespace legacy = sor::legacy_free_path;

// ---------------------------------------------------------------------------

/// A sparse "tenant" demand as a commodity list: `pairs` random unit-ish
/// demands on [0, n) — the serving-loop shape where the flat solver's
/// footprint-proportional round cost beats the reference's full-m passes.
std::vector<Commodity> sparse_commodities(int n, int pairs, Rng& rng) {
  std::vector<Commodity> commodities;
  for (int i = 0; i < pairs; ++i) {
    const int s = rng.uniform_int(0, n - 1);
    int t = rng.uniform_int(0, n - 1);
    if (s == t) t = (t + 1) % n;
    commodities.push_back({s, t, 1.0});
  }
  return commodities;
}

bool full_output_equal(const CongestionResult& a, const CongestionResult& b) {
  return a.congestion == b.congestion && a.lower_bound == b.lower_bound &&
         a.rounds_used == b.rounds_used && a.edge_load == b.edge_load;
}

bool within_contract(const CongestionResult& fast,
                     const CongestionResult& exact) {
  const auto ok = [](double f, double e) {
    return std::abs(f - e) <= 0.05 * std::max(1.0, std::abs(e));
  };
  // Deviation band plus cross-validity: each run's dual bound must sit
  // below the other run's congestion (same LP, both certificates exact).
  return ok(fast.congestion, exact.congestion) &&
         ok(fast.lower_bound, exact.lower_bound) &&
         fast.lower_bound <= exact.congestion * (1.0 + 1e-9) + 1e-12 &&
         exact.lower_bound <= fast.congestion * (1.0 + 1e-9) + 1e-12;
}

void bench_instance(Table& table, const std::string& name, const Graph& g,
                    std::uint64_t seed, int num_demands, int reps) {
  Rng rng(seed);
  std::vector<std::vector<Commodity>> demands;
  demands.reserve(static_cast<std::size_t>(num_demands));
  for (int i = 0; i < num_demands; ++i) {
    demands.push_back(sparse_commodities(g.num_vertices(), /*pairs=*/16, rng));
  }
  MinCongestionOptions options;
  options.rounds = 300;
  options.min_rounds = 50;

  // ---- new flat solver ----------------------------------------------------
  std::vector<CongestionResult> flat_results;
  double flat_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (const auto& commodities : demands) {
      const auto start = Clock::now();
      CongestionResult result = min_congestion_free(g, commodities, options);
      flat_ms += ms_since(start);
      if (r == 0) flat_results.push_back(std::move(result));
    }
  }

  // ---- verbatim pre-change solver, full output equality -------------------
  double legacy_ms = 0.0;
  bool identical = true;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const auto start = Clock::now();
      const CongestionResult result =
          legacy::min_congestion_free(g, demands[i], options);
      legacy_ms += ms_since(start);
      if (r == 0) identical = identical && full_output_equal(result,
                                                             flat_results[i]);
    }
  }

  // ---- opt-in fast-math, epsilon-contract equality ------------------------
  MinCongestionOptions fast_options = options;
  fast_options.fast_math = true;
  double fast_ms = 0.0;
  bool in_contract = true;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const auto start = Clock::now();
      const CongestionResult result =
          min_congestion_free(g, demands[i], fast_options);
      fast_ms += ms_since(start);
      if (r == 0) {
        in_contract = in_contract && within_contract(result, flat_results[i]);
      }
    }
  }

  const int ops = reps * num_demands;
  sor::bench::stage_row(table, "free_route", name, 1, flat_ms, ops,
                        flat_ms > 0.0 ? legacy_ms / flat_ms : 0.0,
                        identical ? "yes" : "no");
  sor::bench::stage_row(table, "free_route_legacy", name, 1, legacy_ms, ops,
                        1.0, identical ? "yes" : "no");
  sor::bench::stage_row(table, "free_route_fastmath", name, 1, fast_ms, ops,
                        fast_ms > 0.0 ? legacy_ms / fast_ms : 0.0,
                        in_contract ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M5 — flat free-path MWU",
         "min_congestion_free on the flat substrate: reuse-scratch Dijkstra "
         "best responses, incremental max_log/exp caching, sparse touched-set "
         "aggregation. Measured against a verbatim copy of the pre-change "
         "solver; default-mode outputs must be bit-identical, fast-math rows "
         "within the documented epsilon contract.");

  Table table = stage_table();
  const int reps = args.quick ? 2 : 3;
  {
    const int dim = args.quick ? 8 : 10;
    bench_instance(table, "hypercube(d=" + std::to_string(dim) + ")",
                   gen::hypercube(dim), 11, /*num_demands=*/args.quick ? 3 : 6,
                   reps);
  }
  {
    const int side = args.quick ? 20 : 28;
    bench_instance(
        table, "torus(" + std::to_string(side) + "x" + std::to_string(side) +
                   ")",
        gen::grid(side, side, /*wrap=*/true), 13,
        /*num_demands=*/args.quick ? 3 : 6, reps);
  }

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m5_free_path", table);
  sink.flush();
  return 0;
}
