// Experiment M9 — cross-epoch warm starts (src/warm/, docs/warm-start.md).
//
// Drives two engines over the SAME breathing-volume epoch trace (fixed
// support, diurnal volumes — the regime warm starts are built for), one
// routing cold every epoch, one carrying RouteSpec::warm_start state
// across epochs, with a capacity edit mid-trace exercising the seed's
// in-place rescale. Canonical stage rows (tools/bench_gate.py):
//
//   warm_rounds    the headline: speedup = total cold restricted-MWU
//                  rounds / total warm rounds — the rounds-saved ratio.
//                  Deterministic for a fixed seed (round counts are part
//                  of the bit-exact solver contract), so the baseline
//                  pins it exactly; identical = the ratio is > 1 (warm
//                  genuinely saved rounds) AND a fresh warm engine's
//                  rerun of the whole sequence is bit-identical.
//   warm_identity  cold==warm-disabled bit-identity: a fresh cold
//                  engine's rerun of the sequence matches the first cold
//                  run bit for bit — the warm subsystem being linked in
//                  and exercised in-process leaves cold routes untouched.
//   warm_cert      per-epoch cross-validation: each run's MWU dual lower
//                  bound must lower-bound the OTHER run's exact
//                  congestion (warm starts move the starting iterate,
//                  never the certificate discipline).
//   warm_replay    re-serving the final epoch's bit-identical instance
//                  returns the stored report verbatim with the full
//                  cold-round saving.
//
// A row with identical=no is a bug, not a measurement.
//
//   bench_m9_warm_start [--quick] [--json PATH]
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/scenario.h"

namespace {

using namespace sor;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One engine's pass over the trace: per-epoch reports plus totals.
struct PassResult {
  std::vector<RouteReport> reports;
  long long rounds = 0;
  double route_ms = 0.0;
};

/// Routes every epoch demand in order on a FRESH engine built from `spec`
/// (install once over the union support, capacity edit at mid-trace).
PassResult run_pass(const scenario::ScenarioSpec& spec,
                    const std::vector<Demand>& demands, bool warm) {
  SorEngine engine = scenario::build_scenario_engine(spec);
  engine.install_paths(SamplingSpec::for_demands(demands, spec.alpha));
  RouteSpec route_spec;
  route_spec.compute_optimum = false;
  route_spec.compute_lower_bound = false;
  route_spec.warm_start = warm;

  PassResult out;
  out.reports.resize(demands.size());
  const std::size_t edit_epoch = demands.size() / 2;
  for (std::size_t e = 0; e < demands.size(); ++e) {
    if (e == edit_epoch) {
      engine.set_edge_capacity(0, 0.5 * engine.graph().edge(0).capacity);
    }
    const auto start = Clock::now();
    engine.route_into(demands[e], route_spec, out.reports[e]);
    out.route_ms += ms_since(start);
    out.rounds += out.reports[e].solution.rounds_used;
  }
  return out;
}

/// Deterministic fields of two passes must match bit for bit.
bool passes_identical(const PassResult& a, const PassResult& b) {
  if (a.reports.size() != b.reports.size() || a.rounds != b.rounds) {
    return false;
  }
  for (std::size_t e = 0; e < a.reports.size(); ++e) {
    const RouteReport& x = a.reports[e];
    const RouteReport& y = b.reports[e];
    if (x.congestion != y.congestion ||
        x.solution.lower_bound != y.solution.lower_bound ||
        x.solution.rounds_used != y.solution.rounds_used ||
        x.solution.edge_load != y.solution.edge_load ||
        x.solution.weights != y.solution.weights) {
      return false;
    }
  }
  return true;
}

void bench_instance(Table& table, const std::string& name,
                    const scenario::ScenarioSpec& spec) {
  const std::vector<Demand> demands = [&] {
    const Graph g = scenario::make_scenario_graph(spec);
    return scenario::generate_trace(g, spec).demands;
  }();
  const int epochs = static_cast<int>(demands.size());

  const PassResult cold = run_pass(spec, demands, /*warm=*/false);
  const PassResult cold2 = run_pass(spec, demands, /*warm=*/false);
  const PassResult warm = run_pass(spec, demands, /*warm=*/true);
  const PassResult warm2 = run_pass(spec, demands, /*warm=*/true);

  // warm_rounds: the rounds-saved ratio, exact for a fixed seed.
  const double ratio = warm.rounds > 0 ? static_cast<double>(cold.rounds) /
                                             static_cast<double>(warm.rounds)
                                       : 0.0;
  const bool warm_deterministic = passes_identical(warm, warm2);
  sor::bench::stage_row(table, "warm_rounds", name, 1, warm.route_ms, epochs,
                        ratio,
                        (ratio > 1.0 && warm_deterministic) ? "yes" : "no");

  // warm_identity: the cold path is untouched by the warm subsystem.
  sor::bench::stage_row(table, "warm_identity", name, 1, cold.route_ms,
                        epochs, 0.0,
                        passes_identical(cold, cold2) ? "yes" : "no");

  // warm_cert: cross-valid LP certificates, every epoch, both directions.
  bool certs_ok = true;
  const double tol = 1e-9;
  for (int e = 0; e < epochs; ++e) {
    const RouteReport& w = warm.reports[static_cast<std::size_t>(e)];
    const RouteReport& c = cold.reports[static_cast<std::size_t>(e)];
    certs_ok = certs_ok &&
               w.solution.lower_bound <= c.congestion * (1.0 + tol) &&
               c.solution.lower_bound <= w.congestion * (1.0 + tol) &&
               w.congestion >= w.solution.lower_bound * (1.0 - tol) &&
               c.congestion >= c.solution.lower_bound * (1.0 - tol);
  }
  sor::bench::stage_row(table, "warm_cert", name, 1,
                        cold.route_ms + warm.route_ms, 2 * epochs, 0.0,
                        certs_ok ? "yes" : "no");

  // warm_replay: serve the final epoch's instance again on an engine that
  // just captured it — the stored report must come back verbatim.
  {
    SorEngine engine = scenario::build_scenario_engine(spec);
    engine.install_paths(SamplingSpec::for_demands(demands, spec.alpha));
    RouteSpec route_spec;
    route_spec.compute_optimum = false;
    route_spec.compute_lower_bound = false;
    route_spec.warm_start = true;
    const Demand& last = demands.back();
    const RouteReport first = engine.route(last, route_spec);
    const auto start = Clock::now();
    const RouteReport replay = engine.route(last, route_spec);
    const double replay_ms = ms_since(start);
    const bool ok = replay.warm.replayed &&
                    replay.warm.rounds_saved == first.solution.rounds_used &&
                    replay.congestion == first.congestion &&
                    replay.solution.edge_load == first.solution.edge_load;
    sor::bench::stage_row(table, "warm_replay", name, 1, replay_ms, 1, 0.0,
                          ok ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M9 — cross-epoch warm starts",
         "Breathing-volume trace served cold vs warm-started: speedup is "
         "the total-MWU-rounds ratio cold/warm (exact for a fixed seed; "
         "identical=yes additionally requires ratio > 1 and a bit-identical "
         "warm rerun), warm_identity pins the cold path bit-identical with "
         "the warm subsystem exercised in-process, warm_cert pins "
         "cross-valid LP certificates every epoch, warm_replay pins "
         "verbatim replay of a bit-identical instance.");

  Table table = stage_table();

  {
    sor::scenario::ScenarioSpec spec;
    spec.name = "diurnal";
    spec.topology = "torus";
    spec.size = args.quick ? 6 : 8;
    spec.backend = args.quick ? "racke:num_trees=4" : "racke:num_trees=6";
    spec.seed = 31;
    spec.epochs = args.quick ? 8 : 12;
    spec.alpha = 4;
    spec.model = *sor::scenario::TrafficModelSpec::parse(
        args.quick
            ? "diurnal_gravity:total=64,amplitude=0.6,period=4,max_pairs=48"
            : "diurnal_gravity:total=128,amplitude=0.6,period=6,max_pairs=96");
    bench_instance(table,
                   "torus(" + std::to_string(spec.size) + "x" +
                       std::to_string(spec.size) + ")+diurnal",
                   spec);
  }
  {
    // Same regime on a hypercube/valiant substrate: warm starts must not
    // be a racke artifact.
    sor::scenario::ScenarioSpec spec;
    spec.name = "diurnal_cube";
    spec.topology = "hypercube";
    spec.size = args.quick ? 4 : 5;
    spec.seed = 37;
    spec.epochs = args.quick ? 6 : 10;
    spec.alpha = 4;
    spec.model = *sor::scenario::TrafficModelSpec::parse(
        args.quick
            ? "diurnal_gravity:total=48,amplitude=0.6,period=3,max_pairs=32"
            : "diurnal_gravity:total=96,amplitude=0.6,period=5,max_pairs=64");
    bench_instance(table,
                   "hypercube(d=" + std::to_string(spec.size) + ")+diurnal",
                   spec);
  }

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m9_warm_start", table);
  sink.flush();
  return 0;
}
