// Experiment T4 — Lemmas 2.8 & 2.9 (completion-time competitiveness).
//
// Paper claim: sampling from hop-constrained oblivious routings at
// O(log n) geometric scales gives a path system that is polylog-competitive
// for congestion + dilation, where congestion-only optimization can be
// badly non-competitive ([GHZ21] separation).
//
// We route heavy single-pair demand through "dilation trap" graphs (a short
// direct edge vs long fat detours) and a torus, comparing congestion-only
// routing vs the multi-scale completion-time router. Expected shape: the
// completion-time router's cong+dil objective beats congestion-only routing
// whenever the trap is active, and matches it otherwise.
#include "bench_common.h"
#include "core/completion_time.h"

namespace {

using namespace sor;

void run() {
  bench::banner("T4: completion time (congestion + dilation), Lemmas 2.8/2.9",
                "multi-scale hop-constrained sampling is cong+dil "
                "competitive where congestion-only is not");
  Rng rng(31);
  Table table({"instance", "demand", "cong-only: c", "d", "c+d",
               "compl-time: c", "d", "c+d", "improvement"});

  struct Case {
    std::string name;
    Graph graph;
    Demand demand;
  };
  std::vector<Case> cases;
  {
    // Light demand: the direct edge alone gives c+d = 6; congestion-only
    // optimization still spreads over the 12-hop detours (lower congestion,
    // much worse completion time).
    Case c;
    c.name = "trap(L=12) light";
    c.graph = gen::dilation_trap(12, 3, 10.0);
    c.demand.set(0, 1, 5.0);
    cases.push_back(std::move(c));
  }
  {
    // Heavy demand: all-direct costs c+d = 61; balancing wins.
    Case c;
    c.name = "trap(L=8) heavy";
    c.graph = gen::dilation_trap(8, 4, 25.0);
    c.demand.set(0, 1, 60.0);
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "trap(L=12) medium";
    c.graph = gen::dilation_trap(12, 2, 50.0);
    c.demand.set(0, 1, 40.0);
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "torus(8x8) permutation";
    c.graph = gen::grid(8, 8, /*wrap=*/true);
    c.demand = gen::random_permutation_demand(64, rng);
    cases.push_back(std::move(c));
  }

  for (auto& cs : cases) {
    const auto scales =
        geometric_hop_scales(cs.graph.num_vertices(), 2.0);
    const PathSystem ps = sample_multi_scale_path_system(
        cs.graph, /*alpha=*/4, scales, support_pairs(cs.demand), rng);

    MinCongestionOptions options;
    options.rounds = 400;
    const auto cong_only = route_fractional(cs.graph, ps, cs.demand, options);
    const double cong_only_objective =
        cong_only.congestion + static_cast<double>(cong_only.max_hops);
    const auto balanced =
        route_completion_time(cs.graph, ps, cs.demand, options);

    table.row()
        .cell(cs.name)
        .cell(cs.demand.size(), 0)
        .cell(cong_only.congestion, 1)
        .cell(cong_only.max_hops)
        .cell(cong_only_objective, 1)
        .cell(balanced.congestion, 1)
        .cell(balanced.dilation)
        .cell(balanced.objective, 1)
        .cell(cong_only_objective / balanced.objective, 2);
  }
  table.print();
  std::printf(
      "\nreading: on the traps, congestion-only routing spreads across the\n"
      "long detours (huge dilation) or pays full congestion; the\n"
      "completion-time router balances and wins on c+d. On the torus both\n"
      "agree (no trap), matching the paper's 'benign instances already\n"
      "behave' observation.\n\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
