// Experiment T5 — Lemma 6.3 (rounding) and Corollary 6.4.
//
// Paper claim: any fractional routing can be made integral on the same
// paths with congestion <= 2 * fractional + 3 ln m; hence integral
// semi-oblivious routing costs only a constant factor + additive log.
//
// We measure the actual rounding gap across topologies and demand types.
// Expected shape: integral congestion well below the 2f + 3 ln m budget,
// usually within ~1 unit of the fractional value after local search.
#include <cmath>

#include "bench_common.h"
#include "core/rounding.h"

namespace {

using namespace sor;

void run() {
  bench::banner("T5: integral rounding (Lemma 6.3 / Corollary 6.4)",
                "integral congestion <= 2*frac + 3 ln m, and in practice "
                "much closer");
  Rng rng(41);
  Table table({"instance", "m", "frac", "rounded", "+local-search",
               "budget 2f+3lnm", "within"});

  std::vector<bench::Instance> instances;
  instances.push_back(bench::make_hypercube(6));
  instances.push_back(bench::make_expander(100, 4, rng));
  instances.push_back(bench::make_torus(10, rng));

  for (const auto& inst : instances) {
    const int n = inst.graph().num_vertices();
    for (int trial = 0; trial < 2; ++trial) {
      const Demand d = gen::random_permutation_demand(n, rng);
      const PathSystem ps = sample_path_system(
          inst.routing(), /*alpha=*/4, support_pairs(d), rng);
      MinCongestionOptions options;
      options.rounds = 400;
      const auto fractional = route_fractional(inst.graph(), ps, d, options);
      auto integral = round_randomized(inst.graph(), fractional, rng, 8);
      const double rounded = integral.congestion;
      local_search_improve(inst.graph(), integral);
      const double budget =
          2.0 * fractional.congestion +
          3.0 * std::log(static_cast<double>(inst.graph().num_edges()));
      table.row()
          .cell(inst.name)
          .cell(inst.graph().num_edges())
          .cell(fractional.congestion, 2)
          .cell(rounded, 0)
          .cell(integral.congestion, 0)
          .cell(budget, 2)
          .cell(integral.congestion <= budget ? "yes" : "NO");
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
