// Experiment M7 — service-runtime memory: the long-lived serving loop's
// heap behavior under epochal churn.
//
// Drives SorEngine twice across a churn trace (run 1 warms every arena;
// run 2 is the measured steady state) and reports, per instance, memory
// rows in the canonical stage schema with ops = 1 and ms_per_op = the
// measured VALUE (not a time):
//
//   mem_steady_allocs  max heap allocations inside any steady-state route
//                      call (run 2, epochs >= 1). The engine-owned scratch
//                      arenas + buffer-reusing route_into make this
//                      EXACTLY 0 — identical = yes iff it is 0, and the
//                      CI gate (bench_gate.py --mem-zero) fails on
//                      anything else. Emitted for the stable-support
//                      instance only; a reinstall-per-epoch service
//                      legitimately allocates while path sets change
//                      shape.
//   mem_arena_peak     peak PathStore arena occupancy (ints) over run 2.
//                      Deterministic for a fixed seed (sampling is
//                      seeded), so the baseline gate pins it EXACTLY
//                      (--mem-flat tolerance 1.0): any in-place
//                      compaction/GC leak moves this number. identical =
//                      yes iff the second half's peak stayed within 5% of
//                      the first half's (no growth trend across churn).
//   mem_rss_growth     process RSS growth in MB across run 2 (warm
//                      steady state; expect ~0). Machine-dependent, so
//                      the gate allows slack (--mem-flat 1.10 + 2 MB).
//
// A build without SOR_ALLOC_STATS prints the rows with identical = "-"
// for the alloc row (vacuous zeros); the CI gate then fails loudly
// rather than celebrating an unmeasured contract.
//
//   bench_m7_service_memory [--quick] [--json PATH]
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/alloc_stats.h"
#include "scenario/scenario.h"

namespace {

using namespace sor;
using scenario::EpochReport;
using scenario::ScenarioReport;
using scenario::ScenarioSpec;
using scenario::ScenarioTrace;

struct MemOutcome {
  std::uint64_t steady_allocs = 0;  ///< max over run-2 epochs >= 1
  std::size_t arena_peak = 0;       ///< max arena_ints over run 2
  bool arena_flat = false;          ///< no growth trend across run 2
  double rss_growth_mb = 0.0;       ///< RSS delta across run 2
  double route_ms = 0.0;            ///< run-2 route wall, informational
};

MemOutcome run_instance(const ScenarioSpec& spec, const ScenarioTrace& trace) {
  SorEngine engine = scenario::build_scenario_engine(spec);
  // Run 1 warms every arena: scratch pool, route_into buffers, the
  // PathStore interning arena (incl. its reinstall high-water mark).
  scenario::run_scenario(engine, spec, trace);

  const std::size_t rss_before = runtime::rss_bytes();
  const ScenarioReport report = scenario::run_scenario(engine, spec, trace);
  const std::size_t rss_after = runtime::rss_bytes();

  MemOutcome out;
  out.rss_growth_mb =
      rss_after > rss_before
          ? static_cast<double>(rss_after - rss_before) / (1024.0 * 1024.0)
          : 0.0;
  out.route_ms = report.total_route_ms;
  std::size_t first_half_peak = 0, second_half_peak = 0;
  const std::size_t half = report.epochs.size() / 2;
  for (const EpochReport& row : report.epochs) {
    out.arena_peak = std::max(out.arena_peak, row.arena_ints);
    if (static_cast<std::size_t>(row.epoch) < half) {
      first_half_peak = std::max(first_half_peak, row.arena_ints);
    } else {
      second_half_peak = std::max(second_half_peak, row.arena_ints);
    }
    if (row.epoch >= 1) {
      out.steady_allocs = std::max(out.steady_allocs, row.route_allocs);
    }
  }
  out.arena_flat = static_cast<double>(second_half_peak) <=
                   static_cast<double>(first_half_peak) * 1.05;
  return out;
}

void bench_instance(sor::Table& table, const std::string& name,
                    const ScenarioSpec& spec, bool emit_zero_alloc_row) {
  const ScenarioTrace trace = [&] {
    const Graph g = scenario::make_scenario_graph(spec);
    return scenario::generate_trace(g, spec);
  }();
  const MemOutcome out = run_instance(spec, trace);
  const bool counting = runtime::counting_compiled();

  std::printf(
      "%s: %d epochs, route %.0f ms; steady allocs max %llu, arena peak "
      "%zu ints, rss growth %.2f MB\n",
      name.c_str(), spec.epochs, out.route_ms,
      static_cast<unsigned long long>(out.steady_allocs), out.arena_peak,
      out.rss_growth_mb);

  if (emit_zero_alloc_row) {
    const std::string zero_ok =
        counting ? (out.steady_allocs == 0 ? "yes" : "no") : "-";
    sor::bench::stage_row(table, "mem_steady_allocs", name, 1,
                          static_cast<double>(out.steady_allocs), 1, 0.0,
                          zero_ok);
  }
  sor::bench::stage_row(table, "mem_arena_peak", name, 1,
                        static_cast<double>(out.arena_peak), 1, 0.0,
                        out.arena_flat ? "yes" : "no");
  sor::bench::stage_row(table, "mem_rss_growth", name, 1, out.rss_growth_mb,
                        1, 0.0, "");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M7 — service-runtime memory",
         "Warm serving loop over churn traces: zero steady-state heap "
         "allocations (mem_steady_allocs, exact), flat PathStore arena "
         "under reinstall/compaction churn (mem_arena_peak, deterministic "
         "per seed), flat process RSS (mem_rss_growth, MB). Rows carry the "
         "measured value in ms_per_op with ops = 1.");
  if (!sor::runtime::counting_compiled()) {
    std::printf(
        "warning: built without SOR_ALLOC_STATS — allocation counts are "
        "vacuous zeros and the alloc row is unchecked (identical = -)\n");
  }
  const int epochs = args.quick ? 1500 : 10000;

  Table table = stage_table();

  {
    // Stable support, breathing volumes, install-once: the pure steady
    // state — after epoch 0 every route call must hit warm arenas only.
    ScenarioSpec spec;
    spec.name = "churn";
    spec.topology = "torus";
    spec.size = 6;
    spec.backend = "racke:num_trees=4";
    spec.seed = 29;
    spec.epochs = epochs;
    spec.mwu_rounds = 60;
    spec.measure_ratio = false;
    spec.model = *scenario::TrafficModelSpec::parse(
        "diurnal_gravity:total=48,amplitude=0.5,period=12,max_pairs=32");
    spec.reinstall = *scenario::ReinstallPolicy::parse("never");
    bench_instance(table, "torus-churn/never", spec,
                   /*emit_zero_alloc_row=*/true);
  }

  {
    // The adversarial memory case: a fresh permutation every epoch with a
    // reinstall per epoch (horizon 1), i.e. one full PathStore
    // begin_reinstall + sample + compact cycle per epoch for `epochs`
    // epochs. Without in-place compaction the arena (and RSS) would grow
    // without bound; with it the arena peak stays pinned at the two-
    // generation high-water mark.
    ScenarioSpec spec;
    spec.name = "storm";
    spec.topology = "hypercube";
    spec.size = 5;
    spec.seed = 31;
    spec.epochs = epochs;
    spec.install_horizon = 1;
    spec.mwu_rounds = 60;
    spec.measure_ratio = false;
    spec.model = *scenario::TrafficModelSpec::parse("permutation_storm");
    spec.reinstall = *scenario::ReinstallPolicy::parse("every_k:1");
    bench_instance(table, "hypercube-storm/every_1", spec,
                   /*emit_zero_alloc_row=*/false);
  }

  std::printf("\n");
  table.print();

  JsonSink sink(args.json_path);
  sink.add("m7_service_memory", table);
  sink.flush();
  return 0;
}
