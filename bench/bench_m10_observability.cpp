// Experiment M10 — observability overhead (src/obs/,
// docs/observability.md).
//
// Serves the same serial route sequence three ways — observability off
// (the default), off again (determinism control), and fully on (TraceSpan
// recorder armed + per-round convergence telemetry) — and pins the
// subsystem's two contracts. Canonical stage rows (tools/bench_gate.py):
//
//   obs_route_overhead  the headline: speedup = untraced route wall-ms /
//                       traced route wall-ms (a ratio near 1.0; the
//                       baseline band catches an instrumentation
//                       regression). identical = a second traced pass is
//                       bit-identical to the first (recording is
//                       deterministic observation, not perturbation).
//   obs_identity        the hard contract: traced outputs bitwise-equal
//                       to untraced outputs, and the untraced rerun
//                       bit-identical to the first untraced pass — with
//                       observability ON or OFF, every deterministic
//                       output bit is the same.
//   obs_off_alloc       m7-style memory row (value, not a time): max heap
//                       allocations inside any steady-state route with
//                       the subsystem compiled in but disabled. Must be
//                       exactly 0 (--mem-zero) — the always-on counters
//                       and disabled spans keep the zero-alloc serving
//                       contract.
//
// A row with identical=no is a bug, not a measurement.
//
//   bench_m10_observability [--quick] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/alloc_stats.h"

namespace {

using namespace sor;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Workload {
  Graph graph;
  std::string backend;
  std::vector<Demand> demands;
  int alpha = 4;
};

/// Breathing volumes over one fixed support — the steady-state serving
/// regime (stable demand shape) whose zero-alloc contract bench_m7 gates;
/// epoch 0 warms the scratch, later epochs must not allocate.
std::vector<Demand> breathing_epochs(const Demand& base, int epochs) {
  std::vector<Demand> out;
  for (int e = 0; e < epochs; ++e) {
    const double scale = 0.6 + 0.1 * static_cast<double>(e % 5);
    Demand d;
    for (const auto& [pair, value] : base.entries()) {
      d.set(pair.first, pair.second, value * scale);
    }
    out.push_back(std::move(d));
  }
  return out;
}

Workload make_torus(bool quick) {
  Workload w{gen::grid(quick ? 6 : 8, quick ? 6 : 8, true),
             "racke:num_trees=4",
             {},
             4};
  Rng rng(113);
  const Demand base = gen::random_pairs_demand(
      w.graph.num_vertices(), w.graph.num_vertices() / 2, rng);
  w.demands = breathing_epochs(base, quick ? 6 : 10);
  return w;
}

Workload make_cube(bool quick) {
  Workload w{gen::hypercube(quick ? 4 : 5), "valiant", {}, 4};
  Rng rng(211);
  const Demand base =
      gen::random_permutation_demand(w.graph.num_vertices(), rng);
  w.demands = breathing_epochs(base, quick ? 5 : 8);
  return w;
}

struct PassResult {
  std::vector<RouteReport> reports;
  double route_ms = 0.0;
};

/// Serves every demand in order on a fresh engine; `observed` arms the
/// global tracer (pre-sized ring) and per-round convergence recording.
PassResult run_pass(const Workload& w, bool observed) {
  if (observed) {
    obs::tracer().enable();
  } else {
    obs::tracer().disable();
  }
  SorEngine engine = SorEngine::build(Graph(w.graph), w.backend, 17);
  engine.install_paths(SamplingSpec::for_demands(w.demands, w.alpha));
  RouteSpec spec;
  spec.compute_optimum = false;
  spec.compute_lower_bound = false;
  spec.record_convergence = observed;

  PassResult out;
  out.reports.resize(w.demands.size());
  for (std::size_t e = 0; e < w.demands.size(); ++e) {
    const auto start = Clock::now();
    engine.route_into(w.demands[e], spec, out.reports[e]);
    out.route_ms += ms_since(start);
  }
  obs::tracer().disable();
  return out;
}

/// Deterministic output fields must match bit for bit (the traced pass
/// additionally carries convergence records; those are observation, not
/// output, and are excluded by construction of this comparison).
bool passes_identical(const PassResult& a, const PassResult& b) {
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t e = 0; e < a.reports.size(); ++e) {
    const RouteReport& x = a.reports[e];
    const RouteReport& y = b.reports[e];
    if (x.congestion != y.congestion ||
        x.solution.lower_bound != y.solution.lower_bound ||
        x.solution.rounds_used != y.solution.rounds_used ||
        x.solution.edge_load != y.solution.edge_load ||
        x.solution.weights != y.solution.weights) {
      return false;
    }
  }
  return true;
}

/// Max heap allocations inside any steady-state route with observability
/// compiled in but off. Epoch 0 is warm-up (cold scratch).
std::uint64_t steady_allocs(const Workload& w) {
  obs::tracer().disable();
  SorEngine engine = SorEngine::build(Graph(w.graph), w.backend, 17);
  engine.install_paths(SamplingSpec::for_demands(w.demands, w.alpha));
  RouteSpec spec;
  spec.compute_optimum = false;
  spec.compute_lower_bound = false;
  RouteReport report;
  std::uint64_t worst = 0;
  for (std::size_t e = 0; e < w.demands.size(); ++e) {
    runtime::AllocProbe probe;
    engine.route_into(w.demands[e], spec, report);
    if (e > 0) worst = std::max(worst, probe.delta().allocs);
  }
  return worst;
}

void bench_instance(Table& table, const std::string& name,
                    const Workload& w) {
  const int ops = static_cast<int>(w.demands.size());

  const PassResult off = run_pass(w, /*observed=*/false);
  const PassResult off2 = run_pass(w, /*observed=*/false);
  const PassResult on = run_pass(w, /*observed=*/true);
  const PassResult on2 = run_pass(w, /*observed=*/true);

  // obs_route_overhead: untraced/traced wall ratio; deterministic traced
  // reruns are part of the row's identity claim.
  const double ratio = on.route_ms > 0.0 ? off.route_ms / on.route_ms : 0.0;
  sor::bench::stage_row(table, "obs_route_overhead", name, 1, on.route_ms,
                        ops, ratio,
                        passes_identical(on, on2) ? "yes" : "no");

  // obs_identity: observability on vs off — every output bit the same.
  const bool identical =
      passes_identical(off, on) && passes_identical(off, off2);
  sor::bench::stage_row(table, "obs_identity", name, 1, off.route_ms, ops,
                        0.0, identical ? "yes" : "no");

  // obs_off_alloc: m7-style value row, gated --mem-zero. identical="-"
  // when the build cannot measure (no SOR_ALLOC_STATS interposer).
  const std::uint64_t allocs = steady_allocs(w);
  const bool counting = runtime::counting_compiled();
  sor::bench::stage_row(table, "obs_off_alloc", name, 1,
                        static_cast<double>(allocs), 1, 0.0,
                        counting ? (allocs == 0 ? "yes" : "no") : "-");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sor::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  banner("M10 — observability overhead",
         "The same serial route sequence served with observability off and "
         "fully on (armed TraceSpan recorder + per-round convergence "
         "telemetry): speedup is the untraced/traced wall-ms ratio (near "
         "1.0; the baseline band catches instrumentation regressions), "
         "obs_identity pins traced outputs bitwise-equal to untraced, "
         "obs_off_alloc pins the disabled subsystem's zero-alloc steady "
         "state (exact 0, --mem-zero).");

  Table table = stage_table();
  bench_instance(table, args.quick ? "torus(6x6)" : "torus(8x8)",
                 make_torus(args.quick));
  bench_instance(table, args.quick ? "hypercube(d=4)" : "hypercube(d=5)",
                 make_cube(args.quick));

  table.print();
  JsonSink sink(args.json_path);
  sink.add("m10_observability", table);
  sink.flush();
  return 0;
}
