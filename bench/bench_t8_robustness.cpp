// Experiment T8 — robustness under link failures (Section 1 motivation,
// SMORE's selling point [KYY+18]) plus the anytime-solve contract.
//
// Paper claim: semi-oblivious candidate sets sampled from an oblivious
// routing are diverse, so after link failures most pairs keep a live
// candidate path and a pure rate re-optimization (no new forwarding
// state) restores near-optimal congestion.
//
// Part 1 (stdout only): sweep alpha x number-of-failed-links on two
// topologies and report demand coverage and re-optimized congestion.
// Expected shape: coverage rises quickly with alpha (diversity), and the
// surviving congestion stays close to the no-failure baseline.
//
// Part 2 (canonical JsonSink rows, gated by tools/bench_gate.py):
//   phase "anytime_gap"      a round-budgeted restricted/free MWU solve.
//                            The speedup column carries 1 + certified
//                            optimality gap — seed-exact deterministic, so
//                            CI gates it against the committed baseline
//                            like any other machine-independent ratio.
//                            identical=yes iff a repeat run is bitwise
//                            equal AND the dual certificate holds
//                            (lower <= cong <= lower * (1 + gap)).
//   phase "anytime_identity" the budget-off run vs a non-triggering
//                            budget; identical=yes iff bitwise equal.
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "core/robustness.h"

namespace {

using namespace sor;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void run_failure_sweep(const bench::Instance& inst, Rng& rng, bool quick) {
  std::printf("-- %s --\n", inst.name.c_str());
  const int n = inst.graph().num_vertices();
  const Demand d = gen::random_permutation_demand(n, rng);
  const auto pairs = support_pairs(d);

  Table table({"alpha", "failures", "coverage", "congestion", "baseline"});
  const std::vector<int> alphas = quick ? std::vector<int>{2, 4}
                                        : std::vector<int>{1, 2, 4, 8};
  for (int alpha : alphas) {
    const PathSystem ps =
        sample_path_system(inst.routing(), alpha, pairs, rng);
    MinCongestionOptions options;
    options.rounds = quick ? 120 : 250;
    const double baseline =
        route_fractional(inst.graph(), ps, d, options).congestion;
    for (int failures : {2, 6, 12}) {
      // Average over a few failure draws.
      double coverage = 0.0;
      double congestion = 0.0;
      const int trials = quick ? 2 : 3;
      for (int t = 0; t < trials; ++t) {
        const auto failed = sample_failures(inst.graph(), failures, rng);
        const auto report =
            evaluate_under_failures(inst.graph(), ps, d, failed, options);
        coverage += report.coverage() / trials;
        congestion += report.congestion / trials;
      }
      table.row()
          .cell(alpha)
          .cell(failures)
          .cell(coverage, 3)
          .cell(congestion, 2)
          .cell(baseline, 2);
    }
  }
  table.print();
  std::printf("\n");
}

/// Flattens a demand into the lp-layer commodity list (entry order).
std::vector<Commodity> commodities_of(const Demand& d) {
  std::vector<Commodity> out;
  for (const auto& [pair, value] : d.entries()) {
    out.push_back({pair.first, pair.second, value});
  }
  return out;
}

bool same_solution(const SemiObliviousSolution& a,
                   const SemiObliviousSolution& b) {
  return a.congestion == b.congestion && a.lower_bound == b.lower_bound &&
         a.optimality_gap == b.optimality_gap && a.edge_load == b.edge_load &&
         a.weights == b.weights && a.status == b.status;
}

bool same_result(const CongestionResult& a, const CongestionResult& b) {
  return a.congestion == b.congestion && a.lower_bound == b.lower_bound &&
         a.optimality_gap == b.optimality_gap && a.edge_load == b.edge_load &&
         a.status == b.status;
}

bool certificate_holds(double congestion, double lower, double gap) {
  return lower > 0.0 && lower <= congestion + 1e-12 && gap >= 0.0 &&
         congestion <= lower * (1.0 + gap) * (1.0 + 1e-9);
}

/// Emits the anytime rows for one instance: a budgeted restricted solve, a
/// budgeted free-path solve (both "anytime_gap"), and the budget-off
/// bit-identity row ("anytime_identity").
void run_anytime(Table& table, const bench::Instance& inst, Rng& rng,
                 bool quick) {
  const int n = inst.graph().num_vertices();
  const Demand d = gen::random_permutation_demand(n, rng);
  const PathSystem ps =
      sample_path_system(inst.routing(), 4, support_pairs(d), rng);

  MinCongestionOptions full;
  full.rounds = quick ? 120 : 250;

  // Restricted solver, round budget: seed-exact prefix + rewind, so the
  // certified gap (and hence the speedup column) is deterministic.
  {
    MinCongestionOptions budgeted = full;
    budgeted.budget.max_rounds = 16;
    const auto start = Clock::now();
    const SemiObliviousSolution a =
        route_fractional(inst.graph(), ps, d, budgeted);
    const double ms = ms_since(start);
    const SemiObliviousSolution b =
        route_fractional(inst.graph(), ps, d, budgeted);
    const bool ok =
        a.status == SolveStatus::kBudgetRounds && same_solution(a, b) &&
        certificate_holds(a.congestion, a.lower_bound, a.optimality_gap);
    bench::stage_row(table, "anytime_gap", inst.name + ",restricted", 1, ms,
                     1, 1.0 + a.optimality_gap, ok ? "yes" : "no");
  }

  // Free-path solver, round budget.
  {
    const std::vector<Commodity> commodities = commodities_of(d);
    MinCongestionOptions budgeted = full;
    budgeted.budget.max_rounds = 16;
    const auto start = Clock::now();
    const CongestionResult a =
        min_congestion_free(inst.graph(), commodities, budgeted);
    const double ms = ms_since(start);
    const CongestionResult b =
        min_congestion_free(inst.graph(), commodities, budgeted);
    const bool ok =
        a.status == SolveStatus::kBudgetRounds && same_result(a, b) &&
        certificate_holds(a.congestion, a.lower_bound, a.optimality_gap);
    bench::stage_row(table, "anytime_gap", inst.name + ",free", 1, ms, 1,
                     1.0 + a.optimality_gap, ok ? "yes" : "no");
  }

  // Budget off vs a budget that never triggers: bit-identical or the
  // anytime layer leaked into the clean path.
  {
    const auto start = Clock::now();
    const SemiObliviousSolution off =
        route_fractional(inst.graph(), ps, d, full);
    const double ms = ms_since(start);
    MinCongestionOptions idle = full;
    idle.budget.max_rounds = 1 << 20;  // above the round cap: never binds
    const SemiObliviousSolution with =
        route_fractional(inst.graph(), ps, d, idle);
    const bool ok = same_solution(off, with) &&
                    with.status != SolveStatus::kBudgetRounds &&
                    with.status != SolveStatus::kBudgetDeadline;
    bench::stage_row(table, "anytime_identity", inst.name, 1, ms, 1, -1.0,
                     ok ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("T8: link-failure robustness + anytime-solve certificates",
                "coverage after failures rises quickly with alpha; "
                "round-budgeted solves return certified best-so-far "
                "iterates, bit-identical when the budget never triggers");
  bench::JsonSink sink(args.json_path);
  Rng rng(71);

  Table anytime = bench::stage_table();
  {
    auto inst = args.quick ? bench::make_hypercube(5) : bench::make_hypercube(6);
    run_failure_sweep(inst, rng, args.quick);
    run_anytime(anytime, inst, rng, args.quick);
  }
  {
    auto inst = args.quick ? bench::make_torus(6, rng) : bench::make_torus(8, rng);
    run_failure_sweep(inst, rng, args.quick);
    run_anytime(anytime, inst, rng, args.quick);
  }

  std::printf("-- anytime-solve certificates --\n");
  anytime.print();
  sink.add("t8_robustness", anytime);
  return sink.flush() ? 0 : 1;
}
