// Experiment T8 — robustness under link failures (Section 1 motivation,
// SMORE's selling point [KYY+18]).
//
// Paper claim: semi-oblivious candidate sets sampled from an oblivious
// routing are diverse, so after link failures most pairs keep a live
// candidate path and a pure rate re-optimization (no new forwarding
// state) restores near-optimal congestion.
//
// We sweep alpha x number-of-failed-links on two topologies and report
// demand coverage and re-optimized congestion. Expected shape: coverage
// rises quickly with alpha (diversity), and the surviving congestion stays
// close to the no-failure baseline.
#include "bench_common.h"
#include "core/robustness.h"

namespace {

using namespace sor;

void run_instance(const bench::Instance& inst, Rng& rng) {
  std::printf("-- %s --\n", inst.name.c_str());
  const int n = inst.graph().num_vertices();
  const Demand d = gen::random_permutation_demand(n, rng);
  const auto pairs = support_pairs(d);

  Table table({"alpha", "failures", "coverage", "congestion", "baseline"});
  for (int alpha : {1, 2, 4, 8}) {
    const PathSystem ps =
        sample_path_system(inst.routing(), alpha, pairs, rng);
    MinCongestionOptions options;
    options.rounds = 250;
    const double baseline =
        route_fractional(inst.graph(), ps, d, options).congestion;
    for (int failures : {2, 6, 12}) {
      // Average over a few failure draws.
      double coverage = 0.0;
      double congestion = 0.0;
      const int trials = 3;
      for (int t = 0; t < trials; ++t) {
        const auto failed = sample_failures(inst.graph(), failures, rng);
        const auto report =
            evaluate_under_failures(inst.graph(), ps, d, failed, options);
        coverage += report.coverage() / trials;
        congestion += report.congestion / trials;
      }
      table.row()
          .cell(alpha)
          .cell(failures)
          .cell(coverage, 3)
          .cell(congestion, 2)
          .cell(baseline, 2);
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("T8: link-failure robustness of sampled candidate sets",
                "coverage after failures rises quickly with alpha; rate "
                "re-optimization keeps congestion near the baseline");
  Rng rng(71);
  {
    auto inst = bench::make_hypercube(6);
    run_instance(inst, rng);
  }
  {
    auto inst = bench::make_torus(8, rng);
    run_instance(inst, rng);
  }
  return 0;
}
