// Experiment F1 — Figure 1 + Lemmas 8.1/8.2, Corollary 8.3.
//
// Paper claim: on the gadget C(n, k) with k = floor(n^(1/2 alpha)), every
// (alpha-1+cut)-sparse semi-oblivious routing is at least (k/alpha)-
// competitive on permutation demands, while the offline optimum is 1.
//
// We build the gadget, sample an alpha-sparse path system from the natural
// oblivious routing, run the pigeonhole + Hall adversary, and solve the
// optimal adaptive routing on the sampled paths exactly. The measured
// congestion must reach (and typically exceeds) the guaranteed k/alpha.
#include "bench_common.h"
#include "core/lower_bound.h"

namespace {

using namespace sor;

void run() {
  bench::banner("F1: lower bound on C(n,k) (Figure 1, Cor. 8.3)",
                "every alpha-sparse system is >= k/alpha-competitive; "
                "optimum = 1");
  Table table({"n", "alpha", "k", "matched", "guaranteed k/a", "measured",
               "meets bound"});
  Rng rng(1);
  for (int alpha : {1, 2, 3}) {
    for (int n : {64, 144, 256, 400}) {
      const int k = gen::lower_bound_k(n, alpha);
      if (k < 2) continue;  // bound is trivial below 2 middles
      const Graph g = gen::lower_bound_gadget(n, k);
      const gen::GadgetLayout layout{n, k};
      const auto routing =
          BackendRegistry::instance().make(g, "shortest_path", rng);
      std::vector<std::pair<int, int>> pairs;
      pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          pairs.emplace_back(layout.left_leaf(i), layout.right_leaf(j));
        }
      }
      const PathSystem ps = sample_path_system(*routing, alpha, pairs, rng);
      const auto adversary =
          find_adversarial_demand(g, layout, ps, alpha, k);
      if (adversary.matching_size == 0) continue;
      const auto best = route_fractional_exact(g, ps, adversary.demand);
      const double guaranteed =
          static_cast<double>(adversary.matching_size) / alpha;
      table.row()
          .cell(n)
          .cell(alpha)
          .cell(k)
          .cell(adversary.matching_size)
          .cell(guaranteed, 2)
          .cell(best.congestion, 2)
          .cell(best.congestion >= guaranteed - 1e-6 ? "yes" : "NO");
    }
  }
  table.print();
  std::printf(
      "\nreading: measured >= k/alpha everywhere; the bound weakens\n"
      "exponentially as alpha grows (n^(1/2alpha)), matching Theorem 2.5's\n"
      "upper bound shape.\n\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
