// Experiment T6 — Theorem 5.3 internals: the Main Lemma's deletion process
// (Lemma 5.6) and the weak-to-strong reduction (Lemma 5.8).
//
// Paper claim: for a special demand and an (alpha+cut)-sample, deleting
// paths over threshold-gamma edges still routes >= half of the demand
// (w.h.p.), and iterating this routes everything in O(log m) rounds at a
// 4*gamma-per-round congestion budget.
//
// We run the literal process on hypercubes/expanders with alpha ~ log n
// and sweep gamma. Expected shape: routed fraction jumps to ~1 around
// gamma = O(1)..O(log n); iterative halving finishes in a handful of
// rounds with zero flush.
#include <cmath>

#include "bench_common.h"
#include "core/weak_routing.h"

namespace {

using namespace sor;

void run_instance(const bench::Instance& inst, Rng& rng) {
  std::printf("-- %s --\n", inst.name.c_str());
  const int n = inst.graph().num_vertices();
  const int alpha = std::max(2, static_cast<int>(std::log2(n)));
  const Demand d = gen::random_permutation_demand(n, rng);
  const PathSystem ps =
      sample_path_system(inst.routing(), alpha, support_pairs(d), rng);

  Table table({"gamma", "routed frac", "edges cut", "halving rounds",
               "flushed", "final cong", "cong/(4*g*rounds)"});
  for (double gamma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto pass = run_deletion_process(inst.graph(), ps, d, gamma);
    const auto full = iterative_halving_route(inst.graph(), ps, d, gamma);
    const double budget = 4.0 * gamma * std::max(full.rounds, 1);
    table.row()
        .cell(gamma, 1)
        .cell(pass.routed_fraction, 3)
        .cell(pass.edges_overloaded)
        .cell(full.rounds)
        .cell(full.flushed_size, 1)
        .cell(full.congestion, 2)
        .cell(full.congestion / budget, 2);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("T6: deletion process & iterative halving (Lemmas 5.6/5.8)",
                "half the demand survives threshold gamma = O(polylog); "
                "O(log m) rounds route everything");
  Rng rng(51);
  {
    auto inst = bench::make_hypercube(6);
    run_instance(inst, rng);
  }
  {
    auto inst = bench::make_hypercube(8);
    run_instance(inst, rng);
  }
  {
    auto inst = bench::make_expander(128, 4, rng);
    run_instance(inst, rng);
  }
  return 0;
}
