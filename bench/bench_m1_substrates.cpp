// Experiment M1 — substrate micro-benchmarks (google-benchmark).
//
// Throughput of the building blocks: Dinic max-flow, all-pairs BFS,
// FRT tree construction, backend construction through the registry, path
// sampling, and the staged SorEngine route. These are the knobs that
// determine how far the experiment harnesses scale.
#include <benchmark/benchmark.h>

#include "api/sor_engine.h"
#include "core/demand.h"
#include "core/path_system.h"
#include "core/semi_oblivious.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/shortest_path.h"
#include "oblivious/frt.h"

namespace {

using namespace sor;

void BM_DinicMaxFlow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Graph g = gen::random_regular(n, 6, rng);
  int pair = 0;
  for (auto _ : state) {
    const int s = pair % n;
    const int t = (pair * 7 + n / 2) % n;
    ++pair;
    if (s == t) continue;
    benchmark::DoNotOptimize(max_flow(g, s, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DinicMaxFlow)->Arg(64)->Arg(256)->Arg(1024);

void BM_AllPairsBfs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Graph g = gen::random_regular(n, 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_hop_distances(g));
  }
}
BENCHMARK(BM_AllPairsBfs)->Arg(64)->Arg(256);

void BM_FrtTreeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = gen::random_regular(n, 6, rng);
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  for (auto _ : state) {
    FrtTree tree(g, unit, rng);
    benchmark::DoNotOptimize(tree.nodes().size());
  }
}
BENCHMARK(BM_FrtTreeBuild)->Arg(64)->Arg(256);

void BM_RackeConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = gen::random_regular(n, 6, rng);
  const auto& registry = BackendRegistry::instance();
  const BackendSpec spec = BackendSpec::parse("racke:num_trees=8");
  for (auto _ : state) {
    auto routing = registry.make(g, spec, rng);
    benchmark::DoNotOptimize(routing.get());
  }
}
BENCHMARK(BM_RackeConstruction)->Arg(64)->Arg(128);

void BM_ValiantPathSampling(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Graph g = gen::hypercube(dim);
  Rng rng(5);
  const auto routing = BackendRegistry::instance().make(g, "valiant", rng);
  const int n = g.num_vertices();
  for (auto _ : state) {
    const int s = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    int t = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    if (s == t) t = s ^ 1;
    benchmark::DoNotOptimize(routing->sample_path(s, t, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValiantPathSampling)->Arg(8)->Arg(12);

void BM_MwuRestrictedSolve(benchmark::State& state) {
  // Stage 3 throughput through the facade: many revealed demands routed
  // over one frozen PathSystem.
  const int dim = static_cast<int>(state.range(0));
  SorEngine engine = SorEngine::build(gen::hypercube(dim), "valiant", 6);
  Rng rng(6);
  const Demand d =
      gen::random_permutation_demand(engine.graph().num_vertices(), rng);
  engine.install_paths(SamplingSpec::for_demand(d, /*alpha=*/4));
  RouteSpec spec;
  spec.mwu.rounds = 200;
  spec.mwu.target_gap = 1.0;  // force full rounds for stable timing
  spec.compute_optimum = false;
  spec.compute_lower_bound = false;  // time the MWU solve alone
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.route(d, spec).congestion);
  }
}
BENCHMARK(BM_MwuRestrictedSolve)->Arg(6)->Arg(8);

void BM_MwuFreeOptimum(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Graph g = gen::hypercube(dim);
  Rng rng(7);
  const Demand d = gen::random_permutation_demand(g.num_vertices(), rng);
  MinCongestionOptions options;
  options.rounds = 100;
  options.target_gap = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_congestion(g, d, options).upper);
  }
}
BENCHMARK(BM_MwuFreeOptimum)->Arg(5)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
