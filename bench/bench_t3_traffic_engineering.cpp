// Experiment T3 — Section 1.1 traffic-engineering consequence (SMORE).
//
// Paper claim: sampling a small constant number of tunnels (alpha = 4 in
// SMORE) from an oblivious routing and adapting rates yields near-optimal,
// robust traffic engineering; the competitiveness improvement is steep in
// alpha, so 4 is a practical sweet spot.
//
// We sweep alpha over WAN-like topologies x gravity demand suites (with a
// demand shift stress) and report semi-oblivious vs fixed-split-oblivious
// vs optimal congestion. Expected shape: semi/opt close to 1 by alpha = 4;
// oblivious/opt noticeably worse and not improving as fast.
#include "bench_common.h"

namespace {

using namespace sor;

double oblivious_split_congestion(const Graph& g, const PathSystem& ps,
                                  const Demand& d) {
  std::vector<Commodity> commodities = d.commodities();
  std::vector<std::vector<Path>> paths;
  std::vector<std::vector<double>> weights;
  for (const Commodity& c : commodities) {
    const auto& list = ps.paths(c.s, c.t);
    paths.push_back(list);
    weights.emplace_back(list.size(),
                         c.amount / static_cast<double>(list.size()));
  }
  return congestion_of_weights(g, commodities, paths, weights);
}

void run_topology(const std::string& name, Graph graph, Rng& rng) {
  SorEngine engine = SorEngine::build(std::move(graph),
                                      "racke:num_trees=12", rng.next());
  const Graph& g = engine.graph();
  std::printf("-- %s: %d nodes, %d links --\n", name.c_str(),
              g.num_vertices(), g.num_edges());

  // Demand suite: three gravity matrices at different scales plus a
  // hot-spot shifted one.
  std::vector<Demand> demands;
  for (double scale : {0.5, 1.0, 1.5}) {
    demands.push_back(
        gen::gravity_demand(g, 4.0 * g.num_vertices() * scale));
  }
  {
    Demand shifted = demands[1];
    const int a = 0;
    const int b = g.num_vertices() - 1;
    shifted.add(a, b, 2.0 * g.num_vertices());
    demands.push_back(shifted);
  }
  // Incast stress: a few hotspot sinks each receiving from many sources.
  demands.push_back(gen::hotspot_demand(
      g.num_vertices(), /*hotspots=*/2,
      /*fanin=*/std::max(2, g.num_vertices() / 4), /*amount=*/2.0, rng));
  std::vector<double> opt;
  for (const Demand& d : demands) {
    MinCongestionOptions options;
    options.rounds = 400;
    opt.push_back(std::max(bench::opt_lower_bound(g, d, false),
                           optimal_congestion(g, d, options).lower));
  }

  Table table({"alpha", "semi/opt mean", "semi/opt max", "obl/opt mean",
               "obl/opt max"});
  for (int alpha : {1, 2, 4, 8}) {
    const PathSystem& tunnels = engine.install_paths({.alpha = alpha});
    std::vector<double> semi_ratios;
    std::vector<double> obl_ratios;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      RouteSpec spec;
      spec.mwu.rounds = 400;
      spec.compute_optimum = false;
      spec.compute_lower_bound = false;  // opt[] is the denominator
      const auto semi = engine.route(demands[i], spec);
      semi_ratios.push_back(semi.congestion / opt[i]);
      obl_ratios.push_back(
          oblivious_split_congestion(g, tunnels, demands[i]) / opt[i]);
    }
    const Summary ss = summarize(semi_ratios);
    const Summary os = summarize(obl_ratios);
    table.row()
        .cell(alpha)
        .cell(ss.mean, 2)
        .cell(ss.max, 2)
        .cell(os.mean, 2)
        .cell(os.max, 2);
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("T3: semi-oblivious traffic engineering (SMORE, alpha=4)",
                "adaptive rates over ~4 sampled tunnels track the optimum "
                "and stay robust under demand shifts");
  Rng rng(21);
  run_topology("Abilene WAN", gen::abilene(10.0), rng);
  run_topology("fat-tree(k=4)", gen::fat_tree(4), rng);
  run_topology("random-geometric(60)", gen::random_geometric(60, 0.22, rng),
               rng);
  return 0;
}
