// Shared helpers for the experiment harnesses (bench_f1 ... bench_t6).
//
// Each bench binary regenerates one row of the DESIGN.md experiment index:
// it prints a plain-text table whose *shape* (who wins, by what factor,
// where crossovers fall) mirrors the corresponding claim of the paper.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/demand.h"
#include "core/path_system.h"
#include "core/semi_oblivious.h"
#include "graph/generators.h"
#include "oblivious/racke.h"
#include "oblivious/routing.h"
#include "oblivious/shortest_path_routing.h"
#include "oblivious/valiant.h"
#include "util/stats.h"
#include "util/table.h"

namespace sor::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* claim) {
  std::printf("==== %s ====\n%s\n\n", id, claim);
}

/// A named test topology plus a matching oblivious routing. The graph lives
/// behind a unique_ptr so that the routing's internal pointer to it stays
/// valid when the Instance is moved (e.g. into a vector).
struct Instance {
  std::string name;
  std::unique_ptr<Graph> graph_owner;
  std::unique_ptr<ObliviousRouting> routing;

  const Graph& graph() const { return *graph_owner; }
};

inline Instance make_hypercube(int dim) {
  Instance inst;
  inst.name = "hypercube(d=" + std::to_string(dim) + ")";
  inst.graph_owner = std::make_unique<Graph>(gen::hypercube(dim));
  inst.routing = std::make_unique<ValiantRouting>(*inst.graph_owner, dim);
  return inst;
}

inline Instance make_expander(int n, int degree, Rng& rng, int num_trees = 10) {
  Instance inst;
  inst.name = "expander(n=" + std::to_string(n) + ",d=" +
              std::to_string(degree) + ")";
  inst.graph_owner = std::make_unique<Graph>(gen::random_regular(n, degree, rng));
  inst.routing = std::make_unique<RackeRouting>(
      *inst.graph_owner, RackeOptions{.num_trees = num_trees, .eta = 6.0}, rng);
  return inst;
}

inline Instance make_torus(int side, Rng& rng, int num_trees = 10) {
  Instance inst;
  inst.name = "torus(" + std::to_string(side) + "x" + std::to_string(side) + ")";
  inst.graph_owner = std::make_unique<Graph>(gen::grid(side, side, /*wrap=*/true));
  inst.routing = std::make_unique<RackeRouting>(
      *inst.graph_owner, RackeOptions{.num_trees = num_trees, .eta = 6.0}, rng);
  return inst;
}

/// Max and mean semi-oblivious competitive ratio of alpha-samples over an
/// ensemble of permutation demands, using the cheap distance lower bound
/// combined with an MWU bound when affordable.
struct RatioSummary {
  double mean_ratio = 0.0;
  double max_ratio = 0.0;
};

/// Lower bound on opt: distance duality (cheap) optionally sharpened by a
/// short MWU run for small instances.
inline double opt_lower_bound(const Graph& g, const Demand& d,
                              bool run_mwu) {
  double lb = distance_lower_bound(g, d);
  lb = std::max(lb, d.size() / g.total_capacity());
  if (run_mwu) {
    MinCongestionOptions options;
    options.rounds = 200;
    options.min_rounds = 30;
    lb = std::max(lb, optimal_congestion(g, d, options).lower);
  }
  return lb;
}

}  // namespace sor::bench
