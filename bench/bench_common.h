// Shared helpers for the experiment harnesses (bench_f1 ... bench_t8, m3).
//
// Each bench binary regenerates one row of the DESIGN.md experiment index:
// it prints a plain-text table whose *shape* (who wins, by what factor,
// where crossovers fall) mirrors the corresponding claim of the paper.
//
// Every harness that calls BenchArgs::parse also understands:
//   --quick       shrink instances/trials to a CI-smoke size
//   --json PATH   additionally write every table as machine-readable JSON
//                 rows (one array of row objects; see JsonSink) — this is
//                 what CI uploads as the BENCH_*.json trajectory artifact.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "api/sor_engine.h"
#include "core/demand.h"
#include "core/path_system.h"
#include "core/semi_oblivious.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace sor::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* claim) {
  std::printf("==== %s ====\n%s\n\n", id, claim);
}

/// Common harness flags (unknown flags are ignored so harness-specific
/// parsing can coexist).
struct BenchArgs {
  bool quick = false;
  std::string json_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--quick")) {
        args.quick = true;
      } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
        args.json_path = argv[++i];
      }
    }
    return args;
  }
};

/// Accumulates (experiment id, Table) pairs and writes them as one JSON
/// array of row objects on flush(). A sink with an empty path is a no-op,
/// so harnesses can call add()/flush() unconditionally.
class JsonSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}

  void add(const std::string& experiment, const Table& table) {
    if (path_.empty() || table.num_rows() == 0) return;
    if (!rows_.empty()) rows_ += ",\n";
    rows_ += table.to_json_rows(experiment);
  }

  /// Writes the accumulated rows; returns false (with a warning printed)
  /// if the file cannot be opened.
  bool flush() const {
    if (path_.empty()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to %s\n",
                   path_.c_str());
      return false;
    }
    out << "[\n" << rows_ << "\n]\n";
    std::printf("\nwrote JSON rows to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::string rows_;
};

// ---- canonical stage-row schema ----------------------------------------
// One JsonSink field set across every throughput harness (m3/m4/m5), so
// the CI perf-regression gate (tools/bench_gate.py) parses every artifact
// uniformly:
//   phase        stage name ("route", "free_route", "construct", ...)
//   instance     topology/backend/batch description
//   threads      pool width the row ran with (1 for single-thread stages)
//   ms_per_op    wall-clock per operation
//   ops_per_sec  1000 / ms_per_op (0 when unmeasurable)
//   speedup      vs the row's IN-RUN control (legacy replica / 1-thread
//                sweep point) — machine-independent, this is what the gate
//                bounds; "-" when the row has no control
//   identical    "yes"/"no" output-equality vs the control ("-" when not
//                applicable; for fast-math rows: within the documented
//                epsilon contract). The gate fails on any "no".

inline Table stage_table() {
  return Table({"phase", "instance", "threads", "ms_per_op", "ops_per_sec",
                "speedup", "identical"});
}

/// Appends one canonical stage row. `total_ms` over `ops` operations;
/// `speedup <= 0` and empty `identical` render as "-".
inline void stage_row(Table& table, const std::string& phase,
                      const std::string& instance, int threads,
                      double total_ms, int ops, double speedup,
                      const std::string& identical) {
  const double ms_per_op = total_ms / static_cast<double>(ops);
  const double ops_per_sec =
      total_ms > 0.0 ? 1000.0 * static_cast<double>(ops) / total_ms : 0.0;
  Table& r = table.row()
                 .cell(phase)
                 .cell(instance)
                 .cell(threads)
                 .cell(ms_per_op, 3)
                 .cell(ops_per_sec, 1);
  if (speedup > 0.0) {
    r.cell(speedup, 2);
  } else {
    r.cell("-");
  }
  r.cell(identical.empty() ? "-" : identical);
}

/// A named test topology plus a matching oblivious substrate, both owned by
/// a SorEngine built through the backend registry.
struct Instance {
  std::string name;
  SorEngine engine;

  const Graph& graph() const { return engine.graph(); }
  const ObliviousRouting& routing() const { return engine.backend(); }
};

inline Instance make_hypercube(int dim, std::uint64_t seed = 1) {
  return {"hypercube(d=" + std::to_string(dim) + ")",
          SorEngine::build(gen::hypercube(dim), "valiant", seed)};
}

inline Instance make_expander(int n, int degree, Rng& rng, int num_trees = 10) {
  Graph g = gen::random_regular(n, degree, rng);
  return {"expander(n=" + std::to_string(n) + ",d=" + std::to_string(degree) +
              ")",
          SorEngine::build(std::move(g),
                           "racke:num_trees=" + std::to_string(num_trees),
                           rng.next())};
}

inline Instance make_torus(int side, Rng& rng, int num_trees = 10) {
  return {"torus(" + std::to_string(side) + "x" + std::to_string(side) + ")",
          SorEngine::build(gen::grid(side, side, /*wrap=*/true),
                           "racke:num_trees=" + std::to_string(num_trees),
                           rng.next())};
}

/// Max and mean semi-oblivious competitive ratio of alpha-samples over an
/// ensemble of permutation demands, using the cheap distance lower bound
/// combined with an MWU bound when affordable.
struct RatioSummary {
  double mean_ratio = 0.0;
  double max_ratio = 0.0;
};

/// Lower bound on opt: distance duality (cheap) optionally sharpened by a
/// short MWU run for small instances.
inline double opt_lower_bound(const Graph& g, const Demand& d,
                              bool run_mwu) {
  double lb = distance_lower_bound(g, d);
  lb = std::max(lb, d.size() / g.total_capacity());
  if (run_mwu) {
    MinCongestionOptions options;
    options.rounds = 200;
    options.min_rounds = 30;
    lb = std::max(lb, optimal_congestion(g, d, options).lower);
  }
  return lb;
}

}  // namespace sor::bench
